//! Max / average pooling — with convolution, one of the two layers that
//! "dominate the forward execution during the training of a CNN" (§2.2).
//! Left on the default stream, as the paper only applies GLP4NN to
//! convolutions.

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::kernels;
use crate::layers::kernels::{full_range, sample_range};
use glp4nn::Phase;
use gpu_sim::BufferId;
use tensor::im2col::conv_out_dim;
use tensor::Blob;

/// Pooling operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMethod {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window.
    Average,
}

/// Spatial pooling over NCHW blobs.
pub struct PoolingLayer {
    name: String,
    method: PoolMethod,
    kernel: usize,
    stride: usize,
    /// Argmax indices stashed by the forward pass (max pooling backward).
    max_idx: Vec<usize>,
    oh: usize,
    ow: usize,
}

impl PoolingLayer {
    /// New pooling layer with a square window.
    pub fn new(name: &str, method: PoolMethod, kernel: usize, stride: usize) -> Self {
        PoolingLayer {
            name: name.to_string(),
            method,
            kernel,
            stride,
            max_idx: Vec::new(),
            oh: 0,
            ow: 0,
        }
    }
}

impl Layer for PoolingLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Pooling"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        let b = bottom[0];
        // Caffe uses ceil semantics for pooling output dims.
        let out = |i: usize| {
            if i < self.kernel {
                1
            } else {
                (i - self.kernel).div_ceil(self.stride) + 1
            }
        };
        self.oh = out(b.height());
        self.ow = out(b.width());
        let _ = conv_out_dim; // floor variant unused here, kept for parity
        top[0].resize(&[b.num(), b.channels(), self.oh, self.ow]);
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let b = bottom[0];
        let (n, c, ih, iw) = (b.num(), b.channels(), b.height(), b.width());
        let (oh, ow) = (self.oh, self.ow);

        let in_buf = BufferId::from_label(&format!("{}/in", self.name));
        let out_buf = BufferId::from_label(&format!("{}/out", self.name));
        let idx_buf = BufferId::from_label(&format!("{}/argmax", self.name));
        if ctx.batch_parallel_all {
            // Extension (paper §3.3.1): pooling processes samples
            // independently too, so it can use the same per-sample group
            // dispatch as convolutions. Each chunk declares its sample's
            // regions so the sanitizer can prove chunks disjoint.
            let kernel = self.kernel;
            ctx.dispatch_groups_sym(
                &self.name,
                Phase::Forward,
                n,
                || {
                    Some(
                        sanitizer::SymGroupSpec::new().kernel(
                            sanitizer::SymKernel::new("pool")
                                .reads(in_buf, kernels::sym_sample(c * ih * iw))
                                .writes(out_buf, kernels::sym_sample(c * oh * ow))
                                .writes(idx_buf, kernels::sym_sample(c * oh * ow)),
                        ),
                    )
                },
                || {
                    (0..n as u64)
                        .map(|i| {
                            vec![kernels::pool_kernel("pool", c * oh * ow, kernel)
                                .with_tag(i)
                                .reads(in_buf, sample_range(i, c * ih * iw))
                                .writes(out_buf, sample_range(i, c * oh * ow))
                                .writes(idx_buf, sample_range(i, c * oh * ow))]
                        })
                        .collect()
                },
            );
        } else {
            ctx.dispatch_single(
                &self.name,
                Phase::Forward,
                kernels::pool_kernel("pool", n * c * oh * ow, self.kernel)
                    .reads(in_buf, full_range(n * c * ih * iw))
                    .writes(out_buf, full_range(n * c * oh * ow))
                    .writes(idx_buf, full_range(n * c * oh * ow)),
            );
        }
        if !ctx.compute {
            return;
        }

        let t = top[0].data_mut();
        self.max_idx.resize(t.len(), 0);
        let data = b.data();
        for nn in 0..n {
            for cc in 0..c {
                let in_base = (nn * c + cc) * ih * iw;
                let out_base = (nn * c + cc) * oh * ow;
                for y in 0..oh {
                    for x in 0..ow {
                        let h0 = y * self.stride;
                        let w0 = x * self.stride;
                        let h1 = (h0 + self.kernel).min(ih);
                        let w1 = (w0 + self.kernel).min(iw);
                        let oidx = out_base + y * ow + x;
                        match self.method {
                            PoolMethod::Max => {
                                let mut best = f32::NEG_INFINITY;
                                let mut best_i = in_base + h0 * iw + w0;
                                for hh in h0..h1 {
                                    for ww in w0..w1 {
                                        let i = in_base + hh * iw + ww;
                                        if data[i] > best {
                                            best = data[i];
                                            best_i = i;
                                        }
                                    }
                                }
                                t[oidx] = best;
                                self.max_idx[oidx] = best_i;
                            }
                            PoolMethod::Average => {
                                let mut sum = 0.0f32;
                                for hh in h0..h1 {
                                    for ww in w0..w1 {
                                        sum += data[in_base + hh * iw + ww];
                                    }
                                }
                                t[oidx] = sum / ((h1 - h0) * (w1 - w0)) as f32;
                            }
                        }
                    }
                }
            }
        }
    }

    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
        let t = top[0];
        let out_elems = t.count();
        let in_elems = bottom[0].count();
        ctx.dispatch_single(
            &self.name,
            Phase::Backward,
            kernels::pool_kernel("pool_bwd", out_elems, self.kernel)
                .reads(
                    BufferId::from_label(&format!("{}/dout", self.name)),
                    full_range(out_elems),
                )
                .reads(
                    BufferId::from_label(&format!("{}/argmax", self.name)),
                    full_range(out_elems),
                )
                .writes(
                    BufferId::from_label(&format!("{}/din", self.name)),
                    full_range(in_elems),
                ),
        );
        if !ctx.compute {
            return;
        }
        let b = &mut bottom[0];
        let (ih, iw) = (b.height(), b.width());
        let (c,) = (b.channels(),);
        let bd = b.diff_mut();
        bd.iter_mut().for_each(|v| *v = 0.0);
        let tdiff = t.diff();
        match self.method {
            PoolMethod::Max => {
                for (oidx, &g) in tdiff.iter().enumerate() {
                    bd[self.max_idx[oidx]] += g;
                }
            }
            PoolMethod::Average => {
                let (oh, ow) = (self.oh, self.ow);
                let n = t.num();
                for nn in 0..n {
                    for cc in 0..c {
                        let in_base = (nn * c + cc) * ih * iw;
                        let out_base = (nn * c + cc) * oh * ow;
                        for y in 0..oh {
                            for x in 0..ow {
                                let h0 = y * self.stride;
                                let w0 = x * self.stride;
                                let h1 = (h0 + self.kernel).min(ih);
                                let w1 = (w0 + self.kernel).min(iw);
                                let g =
                                    tdiff[out_base + y * ow + x] / ((h1 - h0) * (w1 - w0)) as f32;
                                for hh in h0..h1 {
                                    for ww in w0..w1 {
                                        bd[in_base + hh * iw + ww] += g;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    fn ctx() -> ExecCtx {
        ExecCtx::naive(DeviceProps::p100())
    }

    #[test]
    fn max_pool_2x2() {
        let mut l = PoolingLayer::new("pool1", PoolMethod::Max, 2, 2);
        #[rustfmt::skip]
        let bottom = Blob::from_data(&[1, 1, 4, 4], vec![
            1.0, 2.0, 5.0, 6.0,
            3.0, 4.0, 7.0, 8.0,
            0.0, 0.0, 1.0, 0.0,
            0.0, 9.0, 0.0, 0.0,
        ]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        assert_eq!(top[0].shape(), &[1, 1, 2, 2]);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        assert_eq!(top[0].data(), &[4.0, 8.0, 9.0, 1.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let mut l = PoolingLayer::new("pool1", PoolMethod::Max, 2, 2);
        let bottom = Blob::from_data(&[1, 1, 2, 2], vec![1.0, 5.0, 2.0, 3.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        top[0].diff_mut()[0] = 7.0;
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![bottom];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        assert_eq!(bottoms[0].diff(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn average_pool_and_backward() {
        let mut l = PoolingLayer::new("p", PoolMethod::Average, 2, 2);
        let bottom = Blob::from_data(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        assert_eq!(top[0].data(), &[3.0]);
        top[0].diff_mut()[0] = 4.0;
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![bottom];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        assert_eq!(bottoms[0].diff(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn ceil_output_dims_like_caffe() {
        // 3x3 input, 2x2 kernel stride 2 -> ceil((3-2)/2)+1 = 2.
        let mut l = PoolingLayer::new("p", PoolMethod::Max, 2, 2);
        let bottom = Blob::nchw(1, 1, 3, 3);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        assert_eq!(top[0].shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn batch_parallel_extension_emits_per_sample_groups() {
        let mut l = PoolingLayer::new("p", PoolMethod::Max, 2, 2);
        let bottom = Blob::nchw(6, 4, 8, 8);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ExecCtx::glp4nn(DeviceProps::p100()).batch_parallel_all();
        c.net_name = "test".into();
        l.forward(&mut c, &[&bottom], &mut top);
        // One kernel per sample (profiling run records them serially).
        assert_eq!(c.device.trace().len(), 6);
        // Second run goes concurrent via the analyzer's plan.
        l.forward(&mut c, &[&bottom], &mut top);
        let key = glp4nn::LayerKey::forward("test", "p").with_chunks(6);
        assert!(c.glp.as_ref().unwrap().plan_for(0, &key).is_some());
        // Math identical to the whole-batch path.
        let mut l2 = PoolingLayer::new("p", PoolMethod::Max, 2, 2);
        let mut top2 = vec![Blob::empty()];
        l2.reshape(&[&bottom], &mut top2);
        let mut c2 = ExecCtx::naive(DeviceProps::p100());
        l2.forward(&mut c2, &[&bottom], &mut top2);
        assert_eq!(top[0].data(), top2[0].data());
    }

    #[test]
    fn enqueues_pool_kernel() {
        let mut l = PoolingLayer::new("p", PoolMethod::Max, 3, 2);
        let bottom = Blob::nchw(2, 4, 10, 10);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        assert_eq!(c.device.trace().len(), 1);
        assert_eq!(c.device.trace()[0].name, "pool");
    }
}
