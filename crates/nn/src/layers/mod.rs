//! The layer zoo used by the paper's four evaluation networks.

pub mod accuracy;
pub mod concat;
pub mod contrastive;
pub mod conv;
pub mod dropout;
pub mod inner_product;
pub mod kernels;
pub mod lrn;
pub mod pooling;
pub mod relu;
pub mod softmax_loss;
pub mod split;

pub use accuracy::AccuracyLayer;
pub use concat::ConcatLayer;
pub use contrastive::ContrastiveLossLayer;
pub use conv::ConvLayer;
pub use dropout::DropoutLayer;
pub use inner_product::InnerProductLayer;
pub use lrn::LrnLayer;
pub use pooling::{PoolMethod, PoolingLayer};
pub use relu::ReluLayer;
pub use softmax_loss::SoftmaxLossLayer;
pub use split::SplitLayer;
