//! Top-1 accuracy layer (evaluation only; no backward).

use crate::exec::ExecCtx;
use crate::layer::Layer;
use glp4nn::Phase;
use tensor::math::argmax;
use tensor::Blob;

/// Fraction of samples whose argmax score matches the label.
pub struct AccuracyLayer {
    name: String,
}

impl AccuracyLayer {
    /// New accuracy layer.
    pub fn new(name: &str) -> Self {
        AccuracyLayer {
            name: name.to_string(),
        }
    }
}

impl Layer for AccuracyLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Accuracy"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        assert_eq!(bottom.len(), 2);
        top[0].resize(&[1]);
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let _ = (&ctx, Phase::Forward); // accuracy runs host-side, no kernel
        if !ctx.compute {
            return;
        }
        let scores = bottom[0];
        let n = scores.num();
        let classes = scores.count() / n;
        let mut correct = 0usize;
        for i in 0..n {
            let row = &scores.data()[i * classes..(i + 1) * classes];
            if argmax(row) == bottom[1].data()[i] as usize {
                correct += 1;
            }
        }
        top[0].data_mut()[0] = correct as f32 / n as f32;
    }

    fn backward(&mut self, _ctx: &mut ExecCtx, _top: &[&Blob], _bottom: &mut [Blob]) {}

    fn needs_backward(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    #[test]
    fn counts_correct_predictions() {
        let mut l = AccuracyLayer::new("acc");
        let scores = Blob::from_data(&[2, 3], vec![1.0, 5.0, 2.0, 9.0, 0.0, 1.0]);
        let labels = Blob::from_data(&[2], vec![1.0, 2.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&scores, &labels], &mut top);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        l.forward(&mut ctx, &[&scores, &labels], &mut top);
        assert!((top[0].data()[0] - 0.5).abs() < 1e-6);
        assert!(!l.needs_backward());
    }
}
