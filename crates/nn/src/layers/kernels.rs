//! Builders for the simulated-GPU kernel descriptors each layer emits.
//!
//! Launch configurations follow Caffe's CUDA kernels: element-wise kernels
//! use one thread per element in 128-thread blocks; GEMMs use 32×32 output
//! tiles computed by 256-thread blocks with double-buffered shared-memory
//! tiles (8 KiB); im2col uses one thread per output column position with
//! the register pressure the paper reports (33 registers). Costs are
//! roofline inputs: FLOPs and DRAM bytes per block.

use gpu_sim::{ByteRange, Dim3, KernelCost, KernelDesc, LaunchConfig};

/// Bytes per f32 element, for declared access ranges.
pub const F32_BYTES: u64 = 4;

/// The byte range sample `i` occupies in a batch-major buffer whose
/// per-sample stride is `stride_elems` f32 elements. This is the region a
/// batch-split chunk kernel declares — chunks of distinct samples are
/// disjoint by construction, which is exactly what the schedule sanitizer
/// proves before concurrent dispatch.
pub fn sample_range(i: u64, stride_elems: usize) -> ByteRange {
    let stride = stride_elems as u64 * F32_BYTES;
    ByteRange::span(i * stride, stride)
}

/// The byte range of a whole `elems`-element f32 buffer (weights, whole-
/// batch activations).
pub fn full_range(elems: usize) -> ByteRange {
    ByteRange::span(0, elems as u64 * F32_BYTES)
}

/// Symbolic (chunk-parametric) form of [`sample_range`]: chunk `i` covers
/// `[i·stride, (i+1)·stride)` bytes for every `i` — the declaration the
/// sanitizer's prover turns into a once-per-site disjointness
/// certificate.
pub fn sym_sample(stride_elems: usize) -> sanitizer::SymRange {
    let stride = stride_elems as u64 * F32_BYTES;
    sanitizer::SymRange::per_chunk(0, stride, stride)
}

/// Symbolic form of [`full_range`]: every chunk touches the whole buffer.
pub fn sym_full(elems: usize) -> sanitizer::SymRange {
    sanitizer::SymRange::fixed(full_range(elems))
}

/// Annotate a whole-batch kernel with full-buffer accesses on the layer's
/// named buffers: each entry is `(buffer suffix, element count)` and the
/// buffer id is derived from `"{layer}/{suffix}"`. Used by layers whose
/// kernels touch entire blobs (ReLU, LRN, FC, loss...), where a coarse
/// whole-buffer declaration is exact.
pub fn declare_io(
    kd: KernelDesc,
    layer: &str,
    reads: &[(&str, usize)],
    writes: &[(&str, usize)],
) -> KernelDesc {
    let mut kd = kd;
    for (suffix, elems) in reads {
        kd = kd.reads(
            gpu_sim::BufferId::from_label(&format!("{layer}/{suffix}")),
            full_range(*elems),
        );
    }
    for (suffix, elems) in writes {
        kd = kd.writes(
            gpu_sim::BufferId::from_label(&format!("{layer}/{suffix}")),
            full_range(*elems),
        );
    }
    kd
}

/// GEMM tile edge (output elements per block edge) — cuBLAS-style 64×64
/// register-tiled blocks, so grids stay modest like the `sgemm_*` kernels
/// the paper profiles.
pub const GEMM_TILE: u32 = 64;
/// Threads per GEMM block.
pub const GEMM_BLOCK_THREADS: u32 = 256;
/// Shared memory per GEMM block: double-buffered 64×16 / 16×64 stripes.
pub const GEMM_SMEM_BYTES: u32 = 16 * 1024;
/// Threads per element-wise block.
pub const ELEMWISE_BLOCK_THREADS: u32 = 128;

fn ceil_div(a: u64, b: u64) -> u32 {
    a.div_ceil(b) as u32
}

/// Per-sample `im2col` kernel: one thread per `(channel, out_y, out_x)`
/// column position, each copying a `F×F` patch.
pub fn im2col_kernel(ci: usize, oh: usize, ow: usize, f: usize, tag: u64) -> KernelDesc {
    let positions = (ci * oh * ow) as u64;
    let grid = ceil_div(positions, ELEMWISE_BLOCK_THREADS as u64).max(1);
    let copied = (ci * f * f * oh * ow) as f64;
    KernelDesc::new(
        "im2col",
        LaunchConfig::new(
            Dim3::linear(grid),
            Dim3::linear(ELEMWISE_BLOCK_THREADS),
            33,
            0,
        ),
        KernelCost::new(
            // Address arithmetic dominates; ~2 ops per copied element.
            2.0 * copied / grid as f64,
            // Read (cached, ~0.5x duplication) + write the column matrix.
            (copied * 4.0 * 1.5) / grid as f64,
        ),
    )
    .with_tag(tag)
}

/// Per-sample convolution GEMM: `C[co × ohw] = W[co × k] · col[k × ohw]`.
pub fn conv_gemm_kernel(co: usize, k: usize, ohw: usize, tag: u64) -> KernelDesc {
    let gx = ceil_div(co as u64, GEMM_TILE as u64).max(1);
    let gy = ceil_div(ohw as u64, GEMM_TILE as u64).max(1);
    let flops_per_block = 2.0 * k as f64 * (GEMM_TILE * GEMM_TILE) as f64;
    // Each block streams two k-long tile stripes through shared memory;
    // L2 captures most cross-block reuse of the same stripes (factor 4),
    // making a well-tiled SGEMM compute-bound, as on real hardware.
    let bytes_per_block = 2.0 * k as f64 * GEMM_TILE as f64 * 4.0 * 0.25;
    KernelDesc::new(
        "sgemm",
        LaunchConfig::new(
            Dim3::plane(gx, gy),
            Dim3::linear(GEMM_BLOCK_THREADS),
            64,
            GEMM_SMEM_BYTES,
        ),
        KernelCost::new(flops_per_block, bytes_per_block),
    )
    .with_tag(tag)
}

/// Per-sample bias broadcast (the paper's `gemmk`): `out[c, p] += bias[c]`.
pub fn bias_kernel(co: usize, ohw: usize, tag: u64) -> KernelDesc {
    let n = (co * ohw) as u64;
    let grid = ceil_div(n, ELEMWISE_BLOCK_THREADS as u64).max(1);
    KernelDesc::new(
        "gemmk",
        LaunchConfig::new(
            Dim3::linear(grid),
            Dim3::linear(ELEMWISE_BLOCK_THREADS),
            16,
            0,
        ),
        KernelCost::new(n as f64 / grid as f64, n as f64 * 8.0 / grid as f64),
    )
    .with_tag(tag)
}

/// Per-sample `col2im` scatter (conv backward-data second half).
pub fn col2im_kernel(ci: usize, ih: usize, iw: usize, f: usize, tag: u64) -> KernelDesc {
    let pixels = (ci * ih * iw) as u64;
    let grid = ceil_div(pixels, ELEMWISE_BLOCK_THREADS as u64).max(1);
    let taps = pixels as f64 * (f * f) as f64;
    KernelDesc::new(
        "col2im",
        LaunchConfig::new(
            Dim3::linear(grid),
            Dim3::linear(ELEMWISE_BLOCK_THREADS),
            28,
            0,
        ),
        KernelCost::new(2.0 * taps / grid as f64, taps * 4.0 / grid as f64),
    )
    .with_tag(tag)
}

/// Whole-batch element-wise kernel (ReLU, dropout, scale...).
pub fn elemwise_kernel(name: &str, elements: usize, flops_per_element: f64) -> KernelDesc {
    let n = elements as u64;
    let grid = ceil_div(n, ELEMWISE_BLOCK_THREADS as u64).max(1);
    KernelDesc::new(
        name,
        LaunchConfig::new(
            Dim3::linear(grid),
            Dim3::linear(ELEMWISE_BLOCK_THREADS),
            16,
            0,
        ),
        KernelCost::new(
            n as f64 * flops_per_element / grid as f64,
            n as f64 * 8.0 / grid as f64,
        ),
    )
}

/// Whole-batch pooling kernel: one thread per output element, each
/// scanning a `F×F` window.
pub fn pool_kernel(name: &str, out_elements: usize, window: usize) -> KernelDesc {
    let n = out_elements as u64;
    let grid = ceil_div(n, ELEMWISE_BLOCK_THREADS as u64).max(1);
    let work = (window * window) as f64;
    KernelDesc::new(
        name,
        LaunchConfig::new(
            Dim3::linear(grid),
            Dim3::linear(ELEMWISE_BLOCK_THREADS),
            24,
            0,
        ),
        KernelCost::new(
            n as f64 * work / grid as f64,
            n as f64 * (work + 1.0) * 4.0 / grid as f64,
        ),
    )
}

/// Whole-batch fully-connected GEMM: `C[n × out] = X[n × in] · W^T`.
pub fn fc_gemm_kernel(batch: usize, out: usize, input: usize) -> KernelDesc {
    conv_gemm_kernel(batch, input, out, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im2col_matches_paper_shape() {
        // Siamese conv1 on MNIST-shaped input: ci=1, out 24x24 -> 576
        // positions -> ceil(576/128) = 5 blocks of 128 threads, 33 regs.
        let k = im2col_kernel(1, 24, 24, 5, 0);
        assert_eq!(k.launch.grid.x, 5);
        assert_eq!(k.launch.block.x, 128);
        assert_eq!(k.launch.regs_per_thread, 33);
        assert_eq!(k.name, "im2col");
    }

    #[test]
    fn gemm_grid_covers_output_tiles() {
        // CaffeNet conv1 per sample: 96 x 3025 output, K=363.
        let k = conv_gemm_kernel(96, 363, 3025, 7);
        assert_eq!(k.launch.grid.x, 2); // ceil(96/64)
        assert_eq!(k.launch.grid.y, 48); // ceil(3025/64)
        assert_eq!(k.launch.smem_per_block(), GEMM_SMEM_BYTES);
        assert_eq!(k.tag, 7);
        assert!(k.cost.flops_per_block > 0.0);
    }

    #[test]
    fn elemwise_covers_all_elements() {
        let k = elemwise_kernel("relu", 1000, 1.0);
        assert!(k.launch.grid.x * k.launch.block.x >= 1000);
    }

    #[test]
    fn tiny_layers_get_at_least_one_block() {
        assert_eq!(im2col_kernel(1, 1, 1, 1, 0).launch.grid.x, 1);
        assert_eq!(conv_gemm_kernel(1, 1, 1, 0).launch.grid.count(), 1);
        assert_eq!(bias_kernel(1, 1, 0).launch.grid.x, 1);
        assert_eq!(pool_kernel("pool", 1, 2).launch.grid.x, 1);
    }

    #[test]
    fn sample_ranges_are_pairwise_disjoint() {
        let stride = 96 * 3025;
        let a = sample_range(0, stride);
        let b = sample_range(1, stride);
        let c = sample_range(2, stride);
        assert_eq!(a.intersect(b), None);
        assert_eq!(b.intersect(c), None);
        assert_eq!(a.len(), stride as u64 * F32_BYTES);
        assert_eq!(b.start, a.end, "samples tile the buffer");
        assert!(full_range(3 * stride).intersect(c).is_some());
    }

    #[test]
    fn gemm_flops_scale_with_k() {
        let small = conv_gemm_kernel(32, 75, 1024, 0);
        let large = conv_gemm_kernel(32, 750, 1024, 0);
        assert!(large.cost.flops_per_block > small.cost.flops_per_block * 9.0);
    }
}
