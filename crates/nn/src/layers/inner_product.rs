//! Fully-connected (inner product) layer.

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::kernels;
use glp4nn::Phase;
use tensor::gemm::{sgemm, Transpose};
use tensor::{Blob, Filler};

/// `top[n × out] = bottom[n × in] · W^T + bias`.
pub struct InnerProductLayer {
    name: String,
    num_output: usize,
    weight: Blob, // [out, in]
    bias: Blob,   // [out]
    input_dim: usize,
    initialized: bool,
    seed: u64,
}

impl InnerProductLayer {
    /// New FC layer with `num_output` units.
    pub fn new(name: &str, num_output: usize, seed: u64) -> Self {
        InnerProductLayer {
            name: name.to_string(),
            num_output,
            weight: Blob::empty(),
            bias: Blob::empty(),
            input_dim: 0,
            initialized: false,
            seed,
        }
    }
}

impl Layer for InnerProductLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "InnerProduct"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        let b = bottom[0];
        self.input_dim = b.count() / b.num();
        top[0].resize(&[b.num(), self.num_output]);
        if !self.initialized {
            self.weight.resize(&[self.num_output, self.input_dim]);
            self.bias.resize(&[self.num_output]);
            Filler::Xavier.fill(self.weight.data_mut(), self.input_dim, self.seed);
            Filler::Constant(0.0).fill(self.bias.data_mut(), 1, self.seed + 1);
            self.initialized = true;
        }
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let b = bottom[0];
        let n = b.num();
        let in_elems = n * self.input_dim;
        let out_elems = n * self.num_output;
        let w_elems = self.num_output * self.input_dim;
        ctx.dispatch_single(
            &self.name,
            Phase::Forward,
            kernels::declare_io(
                kernels::fc_gemm_kernel(n, self.num_output, self.input_dim),
                &self.name,
                &[("in", in_elems), ("w", w_elems), ("bias", self.num_output)],
                &[("out", out_elems)],
            ),
        );
        if !ctx.compute {
            return;
        }
        // top = bottom · W^T
        sgemm(
            Transpose::No,
            Transpose::Yes,
            n,
            self.num_output,
            self.input_dim,
            1.0,
            b.data(),
            self.weight.data(),
            0.0,
            top[0].data_mut(),
        );
        let t = top[0].data_mut();
        for row in t.chunks_mut(self.num_output) {
            for (v, bv) in row.iter_mut().zip(self.bias.data()) {
                *v += bv;
            }
        }
    }

    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
        let t = top[0];
        let n = t.num();
        let in_elems = n * self.input_dim;
        let out_elems = n * self.num_output;
        let w_elems = self.num_output * self.input_dim;
        ctx.dispatch_batch(
            &self.name,
            Phase::Backward,
            vec![
                kernels::declare_io(
                    kernels::fc_gemm_kernel(self.num_output, self.input_dim, n),
                    &self.name,
                    &[("dout", out_elems), ("in", in_elems)],
                    &[("dw", w_elems)],
                ),
                kernels::declare_io(
                    kernels::fc_gemm_kernel(n, self.input_dim, self.num_output),
                    &self.name,
                    &[("dout", out_elems), ("w", w_elems)],
                    &[("din", in_elems)],
                ),
            ],
        );
        if !ctx.compute {
            return;
        }
        let b = &mut bottom[0];
        // dW += dTop^T[out × n] · bottom[n × in]
        sgemm(
            Transpose::Yes,
            Transpose::No,
            self.num_output,
            self.input_dim,
            n,
            1.0,
            t.diff(),
            b.data(),
            1.0,
            self.weight.diff_mut(),
        );
        // db += column sums of dTop.
        {
            let db = self.bias.diff_mut();
            for row in t.diff().chunks(self.num_output) {
                for (d, g) in db.iter_mut().zip(row) {
                    *d += g;
                }
            }
        }
        // dBottom = dTop[n × out] · W[out × in]
        sgemm(
            Transpose::No,
            Transpose::No,
            n,
            self.input_dim,
            self.num_output,
            1.0,
            t.diff(),
            self.weight.data(),
            0.0,
            b.diff_mut(),
        );
    }

    fn params_mut(&mut self) -> Vec<&mut Blob> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    fn ctx() -> ExecCtx {
        ExecCtx::naive(DeviceProps::p100())
    }

    #[test]
    fn forward_known_values() {
        let mut l = InnerProductLayer::new("ip", 2, 1);
        let bottom = Blob::from_data(&[1, 3], vec![1.0, 2.0, 3.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        l.weight
            .data_mut()
            .copy_from_slice(&[1.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
        l.bias.data_mut().copy_from_slice(&[0.5, -0.5]);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        assert_eq!(top[0].data(), &[1.5, 4.5]);
    }

    #[test]
    fn flattens_4d_input() {
        let mut l = InnerProductLayer::new("ip", 4, 1);
        let bottom = Blob::nchw(2, 3, 4, 4);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        assert_eq!(top[0].shape(), &[2, 4]);
        assert_eq!(l.weight.shape(), &[4, 48]);
    }

    #[test]
    fn gradient_check() {
        let mut l = InnerProductLayer::new("ip", 3, 5);
        let mut bottom = Blob::from_data(&[2, 4], (0..8).map(|i| i as f32 * 0.3 - 1.0).collect());
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        top[0].diff_mut().iter_mut().for_each(|v| *v = 1.0);
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![std::mem::replace(&mut bottom, Blob::empty())];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        let dw = l.weight.diff().to_vec();
        let dx = bottoms[0].diff().to_vec();

        let eps = 1e-2f32;
        let fwd_sum = |l: &mut InnerProductLayer, c: &mut ExecCtx, b: &Blob| -> f32 {
            let mut t = vec![Blob::empty()];
            l.reshape(&[b], &mut t);
            l.forward(c, &[b], &mut t);
            t[0].data().iter().sum()
        };
        for &wi in &[0usize, 5, 11] {
            let orig = l.weight.data()[wi];
            l.weight.data_mut()[wi] = orig + eps;
            let p = fwd_sum(&mut l, &mut c, &bottoms[0]);
            l.weight.data_mut()[wi] = orig - eps;
            let m = fwd_sum(&mut l, &mut c, &bottoms[0]);
            l.weight.data_mut()[wi] = orig;
            let numeric = (p - m) / (2.0 * eps);
            assert!((numeric - dw[wi]).abs() < 0.03 * dw[wi].abs().max(1.0));
        }
        for &xi in &[0usize, 3, 7] {
            let orig = bottoms[0].data()[xi];
            bottoms[0].data_mut()[xi] = orig + eps;
            let p = fwd_sum(&mut l, &mut c, &bottoms[0]);
            bottoms[0].data_mut()[xi] = orig - eps;
            let m = fwd_sum(&mut l, &mut c, &bottoms[0]);
            bottoms[0].data_mut()[xi] = orig;
            let numeric = (p - m) / (2.0 * eps);
            assert!((numeric - dx[xi]).abs() < 0.03 * dx[xi].abs().max(1.0));
        }
    }

    #[test]
    fn bias_gradient_sums_rows() {
        let mut l = InnerProductLayer::new("ip", 2, 1);
        let bottom = Blob::from_data(&[2, 2], vec![1.0; 4]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        top[0].diff_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![bottom];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        assert_eq!(l.bias.diff(), &[4.0, 6.0]);
    }
}
