//! The layer abstraction (the unit of the paper's Algorithms 1-2).

use crate::exec::ExecCtx;
use tensor::Blob;

/// A network layer: computes `top` blobs from `bottom` blobs (forward,
/// Algorithm 1) and propagates gradients from `top.diff` to `bottom.diff`
/// and its parameters' diffs (backward, Algorithm 2).
pub trait Layer {
    /// Instance name (e.g. `conv1`).
    fn name(&self) -> &str;

    /// Layer type tag (e.g. `"Convolution"`).
    fn layer_type(&self) -> &'static str;

    /// Infer/allocate top shapes from bottom shapes. Called once before
    /// the first forward and whenever input shapes change.
    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]);

    /// Forward pass: fill `top[*].data` from `bottom[*].data`.
    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]);

    /// Backward pass: fill `bottom[*].diff` (and parameter diffs) from
    /// `top[*].diff`, using data stashed during forward as needed.
    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]);

    /// Learnable parameter blobs (weights, biases). Empty by default.
    fn params_mut(&mut self) -> Vec<&mut Blob> {
        Vec::new()
    }

    /// Weight applied to this layer's scalar output in the global loss
    /// (non-zero only for loss layers).
    fn loss_weight(&self) -> f32 {
        0.0
    }

    /// Whether backward should run for this layer at all (data/accuracy
    /// layers opt out).
    fn needs_backward(&self) -> bool {
        true
    }

    /// Switch between training and inference behaviour (dropout masks
    /// on/off etc.). Default: no-op.
    fn set_train(&mut self, _train: bool) {}
}

/// Shared helper: number of samples in a 4-D bottom blob.
pub fn batch_size(bottom: &Blob) -> usize {
    bottom.num()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null {
        name: String,
    }
    impl Layer for Null {
        fn name(&self) -> &str {
            &self.name
        }
        fn layer_type(&self) -> &'static str {
            "Null"
        }
        fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
            top[0].resize(bottom[0].shape());
        }
        fn forward(&mut self, _ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
            top[0].data_mut().copy_from_slice(bottom[0].data());
        }
        fn backward(&mut self, _ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
            bottom[0].diff_mut().copy_from_slice(top[0].diff());
        }
    }

    #[test]
    fn default_trait_methods() {
        let mut l = Null {
            name: "n".to_string(),
        };
        assert_eq!(l.loss_weight(), 0.0);
        assert!(l.needs_backward());
        assert!(l.params_mut().is_empty());
        assert_eq!(l.layer_type(), "Null");
    }

    #[test]
    fn batch_size_reads_dim0() {
        assert_eq!(batch_size(&Blob::nchw(7, 3, 2, 2)), 7);
    }
}
