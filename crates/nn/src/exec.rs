//! Execution context: simulated device + dispatch policy + timing capture.

use glp4nn::{ExecMode, ExecReport, Glp4nn, LayerKey, Phase};
use gpu_sim::{Device, DeviceProps, KernelDesc, SimTime, StreamId};
use sanitizer::{DispatchPlan, SanitizeMode, Sanitizer};

/// How a layer's kernel groups are dispatched to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Original Caffe behaviour: every kernel serialized on the default
    /// stream.
    Naive,
    /// Round-robin over a fixed number of streams (used for the manual
    /// sweeps of the paper's Figs. 2-4; bypasses the analytical model).
    FixedStreams(u32),
    /// The full GLP4NN runtime-scheduler workflow (profile once, then
    /// model-sized stream pool).
    Glp4nn,
}

/// Per-layer timing record captured during a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTiming {
    /// Layer name.
    pub layer: String,
    /// Forward or backward.
    pub phase: Phase,
    /// Simulated elapsed ns for the layer (inter-layer sync included).
    pub elapsed_ns: SimTime,
    /// Execution mode used.
    pub mode: ExecMode,
}

/// The context threaded through every layer's forward/backward.
pub struct ExecCtx {
    /// The simulated GPU.
    pub device: Device,
    /// Index of this GPU within the GLP4NN framework.
    pub gpu: usize,
    /// Dispatch policy for convolution layers.
    pub mode: DispatchMode,
    /// GLP4NN runtime (required when `mode == Glp4nn`).
    pub glp: Option<Glp4nn>,
    /// Whether layers run their real CPU math (`false` = timing-only, used
    /// for the large CaffeNet/GoogLeNet sweeps; see DESIGN.md).
    pub compute: bool,
    /// Extend batch-level parallelism beyond convolutions to every layer
    /// that processes samples independently (currently pooling) — the
    /// paper's §3.3.1 note that the approach "can be easily extended to
    /// other network layers adopting the batch training method". Off by
    /// default (paper-faithful: conv only).
    pub batch_parallel_all: bool,
    /// Name of the network currently executing (set by [`crate::Net`]).
    pub net_name: String,
    /// Captured per-layer timings (cleared by [`take_timings`]).
    ///
    /// [`take_timings`]: ExecCtx::take_timings
    pub timings: Vec<LayerTiming>,
    /// Schedule sanitizer (off by default; see [`sanitize`]).
    ///
    /// [`sanitize`]: ExecCtx::sanitize
    pub sanitizer: Sanitizer,
    fixed_pool: Vec<StreamId>,
}

impl ExecCtx {
    /// Context in naive mode with real computation enabled.
    pub fn naive(props: DeviceProps) -> Self {
        Self::with_mode(props, DispatchMode::Naive)
    }

    /// Context with the GLP4NN framework attached (single GPU).
    pub fn glp4nn(props: DeviceProps) -> Self {
        Self::glp4nn_with(props, glp4nn::OptimConfig::default())
    }

    /// GLP4NN context with explicit §6 fusion/reordering configuration.
    pub fn glp4nn_with(props: DeviceProps, optim: glp4nn::OptimConfig) -> Self {
        let mut ctx = Self::with_mode(props.clone(), DispatchMode::Glp4nn);
        let mut glp = Glp4nn::with_optim(1, optim);
        glp.register_device(0, &props);
        ctx.glp = Some(glp);
        ctx
    }

    /// Context with an explicit dispatch mode and no framework.
    pub fn with_mode(props: DeviceProps, mode: DispatchMode) -> Self {
        ExecCtx {
            device: Device::new(props),
            gpu: 0,
            mode,
            glp: None,
            compute: true,
            batch_parallel_all: false,
            net_name: String::new(),
            timings: Vec::new(),
            sanitizer: Sanitizer::default(),
            fixed_pool: Vec::new(),
        }
    }

    /// Disable real CPU math (timing-only experiments).
    pub fn timing_only(mut self) -> Self {
        self.compute = false;
        self
    }

    /// Enable schedule sanitizing: `PlanOnly` statically validates every
    /// dispatch plan (chunk-region disjointness, hazards, wait cycles)
    /// before launch; `Full` additionally replays the executed command
    /// trace with the happens-before checker. Diagnostics accumulate in
    /// [`sanitizer`](ExecCtx::sanitizer).
    pub fn sanitize(mut self, mode: SanitizeMode) -> Self {
        self.sanitizer = Sanitizer::new(mode);
        self
    }

    /// Enable batch-level parallelism for every independent-sample layer
    /// (the paper's extension note), not just convolutions.
    pub fn batch_parallel_all(mut self) -> Self {
        self.batch_parallel_all = true;
        self
    }

    /// Dispatch a layer's independent kernel groups according to the
    /// context's mode; blocks until the device drains (the inter-layer
    /// synchronization of the paper's §2.1) and records a timing entry.
    pub fn dispatch_groups(
        &mut self,
        layer: &str,
        phase: Phase,
        groups: Vec<Vec<KernelDesc>>,
    ) -> ExecReport {
        // Static checks for the self-dispatched modes; the Glp4nn path
        // validates inside the runtime scheduler, against the schedule it
        // actually builds (post fusion/reordering).
        if self.sanitizer.is_enabled() && !matches!(self.mode, DispatchMode::Glp4nn) {
            self.sanitizer.check_chunks(layer, &groups);
        }
        let report = match self.mode {
            DispatchMode::Naive => self.run_on_streams(&[self.device.default_stream()], groups),
            DispatchMode::FixedStreams(n) => {
                while self.fixed_pool.len() < n as usize {
                    let s = self.device.create_stream();
                    self.fixed_pool.push(s);
                }
                let pool: Vec<StreamId> = self.fixed_pool[..n as usize].to_vec();
                self.run_on_streams(&pool, groups)
            }
            DispatchMode::Glp4nn => {
                // Plans are keyed per layer x phase x group count: a
                // serving batcher that varies the batch size profiles each
                // shape once, then every later batch of that shape reuses
                // its cached plan.
                let key = LayerKey {
                    net: self.net_name.clone(),
                    layer: layer.to_string(),
                    phase,
                    chunks: groups.len(),
                };
                let san = self.sanitizer.is_enabled().then_some(&mut self.sanitizer);
                let glp = self
                    .glp
                    .as_mut()
                    .expect("DispatchMode::Glp4nn requires an attached framework");
                glp.try_execute(&mut self.device, self.gpu, &key, groups, san)
                    .unwrap_or_else(|e| panic!("{e}"))
            }
        };
        if self.sanitizer.is_full() {
            self.sanitizer.check_device(&self.device);
        }
        self.timings.push(LayerTiming {
            layer: layer.to_string(),
            phase,
            elapsed_ns: report.elapsed_ns,
            mode: report.mode,
        });
        report
    }

    /// Launch a single whole-batch kernel on the default stream and wait —
    /// the path used by non-convolution layers, which the paper leaves in
    /// original Caffe form.
    pub fn dispatch_single(&mut self, layer: &str, phase: Phase, kernel: KernelDesc) -> ExecReport {
        self.dispatch_batch(layer, phase, vec![kernel])
    }

    /// Launch a sequence of whole-batch kernels on the default stream.
    pub fn dispatch_batch(
        &mut self,
        layer: &str,
        phase: Phase,
        kernels: Vec<KernelDesc>,
    ) -> ExecReport {
        let report = self.run_on_streams(&[self.device.default_stream()], vec![kernels]);
        if self.sanitizer.is_full() {
            self.sanitizer.check_device(&self.device);
        }
        self.timings.push(LayerTiming {
            layer: layer.to_string(),
            phase,
            elapsed_ns: report.elapsed_ns,
            mode: report.mode,
        });
        report
    }

    fn run_on_streams(&mut self, pool: &[StreamId], groups: Vec<Vec<KernelDesc>>) -> ExecReport {
        if self.sanitizer.is_enabled() {
            self.sanitizer
                .check_plan(&DispatchPlan::round_robin("dispatch", &groups, pool.len()));
        }
        let t0 = self.device.now();
        let kernels: usize = groups.iter().map(Vec::len).sum();
        for (i, group) in groups.into_iter().enumerate() {
            let sid = pool[i % pool.len()];
            for k in group {
                self.device.launch(sid, k);
            }
        }
        let end = self.device.run();
        ExecReport {
            mode: if pool.len() <= 1 {
                ExecMode::Profiling // serial on default stream
            } else {
                ExecMode::Concurrent {
                    streams: pool.len() as u32,
                }
            },
            elapsed_ns: end - t0,
            kernels,
        }
    }

    /// Take and clear accumulated layer timings.
    pub fn take_timings(&mut self) -> Vec<LayerTiming> {
        std::mem::take(&mut self.timings)
    }

    /// Total simulated time across recorded timings.
    pub fn total_elapsed_ns(&self) -> SimTime {
        self.timings.iter().map(|t| t.elapsed_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Dim3, KernelCost, LaunchConfig};

    fn groups(n: u64) -> Vec<Vec<KernelDesc>> {
        (0..n)
            .map(|i| {
                vec![KernelDesc::new(
                    "sgemm",
                    LaunchConfig::new(Dim3::linear(16), Dim3::linear(128), 32, 2048),
                    KernelCost::new(2.0e6, 1.0e5),
                )
                .with_tag(i)]
            })
            .collect()
    }

    #[test]
    fn naive_serializes_on_default_stream() {
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        let r = ctx.dispatch_groups("conv1", Phase::Forward, groups(4));
        assert_eq!(r.kernels, 4);
        // All trace entries on stream 0.
        assert!(ctx.device.trace().iter().all(|t| t.stream.is_default()));
    }

    #[test]
    fn fixed_streams_spread_groups() {
        let mut ctx = ExecCtx::with_mode(DeviceProps::p100(), DispatchMode::FixedStreams(4));
        ctx.dispatch_groups("conv1", Phase::Forward, groups(8));
        let used: std::collections::HashSet<u32> =
            ctx.device.trace().iter().map(|t| t.stream.raw()).collect();
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn fixed_streams_faster_than_naive() {
        let t_for = |mode| {
            let mut ctx = ExecCtx::with_mode(DeviceProps::p100(), mode);
            ctx.dispatch_groups("conv1", Phase::Forward, groups(16))
                .elapsed_ns
        };
        let naive = t_for(DispatchMode::Naive);
        let conc = t_for(DispatchMode::FixedStreams(8));
        assert!(conc < naive, "concurrent {conc} vs naive {naive}");
    }

    #[test]
    fn glp4nn_mode_profiles_then_accelerates() {
        let mut ctx = ExecCtx::glp4nn(DeviceProps::k40c());
        ctx.net_name = "testnet".to_string();
        let r1 = ctx.dispatch_groups("conv1", Phase::Forward, groups(12));
        assert_eq!(r1.mode, ExecMode::Profiling);
        let r2 = ctx.dispatch_groups("conv1", Phase::Forward, groups(12));
        assert!(matches!(r2.mode, ExecMode::Concurrent { .. }));
        assert!(r2.elapsed_ns < r1.elapsed_ns);
    }

    #[test]
    fn timings_are_recorded_and_takeable() {
        let mut ctx = ExecCtx::naive(DeviceProps::titan_xp());
        ctx.dispatch_groups("conv1", Phase::Forward, groups(2));
        ctx.dispatch_groups("conv1", Phase::Backward, groups(2));
        assert_eq!(ctx.timings.len(), 2);
        assert!(ctx.total_elapsed_ns() > 0);
        let t = ctx.take_timings();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].phase, Phase::Forward);
        assert_eq!(t[1].phase, Phase::Backward);
        assert!(ctx.timings.is_empty());
    }

    #[test]
    #[should_panic(expected = "requires an attached framework")]
    fn glp4nn_mode_without_framework_panics() {
        let mut ctx = ExecCtx::with_mode(DeviceProps::p100(), DispatchMode::Glp4nn);
        ctx.dispatch_groups("conv1", Phase::Forward, groups(1));
    }
}
