//! Execution context: simulated device + dispatch policy + timing capture.

use glp4nn::{ExecMode, ExecPlan, ExecReport, Glp4nn, LayerKey, Phase};
use gpu_sim::{Device, DeviceProps, EventId, KernelDesc, SimTime, StreamId};
use sanitizer::{LintConfig, SanitizeMode, Sanitizer, SymGroupSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// How a layer's kernel groups are dispatched to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Original Caffe behaviour: every kernel serialized on the default
    /// stream.
    Naive,
    /// Round-robin over a fixed number of streams (used for the manual
    /// sweeps of the paper's Figs. 2-4; bypasses the analytical model).
    FixedStreams(u32),
    /// The full GLP4NN runtime-scheduler workflow (profile once, then
    /// model-sized stream pool).
    Glp4nn,
}

/// Per-layer timing record captured during a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTiming {
    /// Layer name.
    pub layer: String,
    /// Forward or backward.
    pub phase: Phase,
    /// Simulated elapsed ns for the layer (inter-layer sync included).
    pub elapsed_ns: SimTime,
    /// Execution mode used.
    pub mode: ExecMode,
}

/// The context threaded through every layer's forward/backward.
pub struct ExecCtx {
    /// The simulated GPU.
    pub device: Device,
    /// Index of this GPU within the GLP4NN framework.
    pub gpu: usize,
    /// Dispatch policy for convolution layers.
    pub mode: DispatchMode,
    /// GLP4NN runtime (required when `mode == Glp4nn`).
    pub glp: Option<Glp4nn>,
    /// Whether layers run their real CPU math (`false` = timing-only, used
    /// for the large CaffeNet/GoogLeNet sweeps; see DESIGN.md).
    pub compute: bool,
    /// Extend batch-level parallelism beyond convolutions to every layer
    /// that processes samples independently (currently pooling) — the
    /// paper's §3.3.1 note that the approach "can be easily extended to
    /// other network layers adopting the batch training method". Off by
    /// default (paper-faithful: conv only).
    pub batch_parallel_all: bool,
    /// Name of the network currently executing (set by [`crate::Net`]).
    pub net_name: String,
    /// Batch size of the pass currently executing (set by [`crate::Net`];
    /// part of the execution-plan cache key, since per-layer kernel
    /// geometry depends on it).
    pub batch: usize,
    /// Captured per-layer timings (cleared by [`take_timings`]).
    ///
    /// [`take_timings`]: ExecCtx::take_timings
    pub timings: Vec<LayerTiming>,
    /// Schedule sanitizer (off by default; see [`sanitize`]).
    ///
    /// [`sanitize`]: ExecCtx::sanitize
    pub sanitizer: Sanitizer,
    fixed_pool: Vec<StreamId>,
    /// Frozen execution plans for the self-dispatched (non-Glp4nn) modes,
    /// keyed by `net/layer/phase/batch/chunks/mode`. The Glp4nn mode
    /// caches inside the framework's concurrency maintainer instead.
    plans: HashMap<String, Arc<ExecPlan>>,
    plan_reuse: bool,
    captures: u64,
    /// Deferred-issue mode: dispatches enqueue their plans (with
    /// inter-layer barrier events standing in for the per-layer
    /// `device.run()`) but never drive the simulation — the caller runs
    /// the device (or its fabric) once for the whole pass. Only the
    /// self-dispatched modes defer; `Glp4nn` dispatches stay eager.
    deferred: bool,
    /// Streams carrying issued-but-unjoined work in deferred mode.
    pending: Vec<StreamId>,
}

impl ExecCtx {
    /// Context in naive mode with real computation enabled.
    pub fn naive(props: DeviceProps) -> Self {
        Self::with_mode(props, DispatchMode::Naive)
    }

    /// Context with the GLP4NN framework attached (single GPU).
    pub fn glp4nn(props: DeviceProps) -> Self {
        Self::glp4nn_with(props, glp4nn::OptimConfig::default())
    }

    /// GLP4NN context with explicit §6 fusion/reordering configuration.
    pub fn glp4nn_with(props: DeviceProps, optim: glp4nn::OptimConfig) -> Self {
        let mut ctx = Self::with_mode(props.clone(), DispatchMode::Glp4nn);
        let mut glp = Glp4nn::with_optim(1, optim);
        glp.register_device(0, &props);
        ctx.glp = Some(glp);
        ctx
    }

    /// Context with an explicit dispatch mode and no framework.
    pub fn with_mode(props: DeviceProps, mode: DispatchMode) -> Self {
        ExecCtx {
            device: Device::new(props),
            gpu: 0,
            mode,
            glp: None,
            compute: true,
            batch_parallel_all: false,
            net_name: String::new(),
            batch: 0,
            timings: Vec::new(),
            sanitizer: Sanitizer::default(),
            fixed_pool: Vec::new(),
            plans: HashMap::new(),
            plan_reuse: true,
            captures: 0,
            deferred: false,
            pending: Vec::new(),
        }
    }

    /// Disable execution-plan reuse: every dispatch re-captures (and
    /// re-validates) its schedule, the behaviour of the old imperative
    /// launch loops. Kept as the baseline for replay-equivalence checks.
    pub fn without_plan_reuse(mut self) -> Self {
        self.plan_reuse = false;
        if let Some(glp) = self.glp.as_mut() {
            glp.set_plan_reuse(false);
        }
        self
    }

    /// How many execution plans this context has captured (including, in
    /// Glp4nn mode, captures inside the attached framework). A
    /// steady-state workload stops incrementing this: every later
    /// iteration is a pure plan replay.
    pub fn plan_captures(&self) -> u64 {
        self.captures + self.glp.as_ref().map_or(0, |g| g.plan_captures(self.gpu))
    }

    /// Disable real CPU math (timing-only experiments).
    pub fn timing_only(mut self) -> Self {
        self.compute = false;
        self
    }

    /// Attach a shared telemetry recorder: the device records kernel spans
    /// and event-dependency flows under process `pid`, and in Glp4nn mode
    /// the framework's profiler mirrors its ingest activity. Observation
    /// only — attaching changes neither the simulated timeline nor any
    /// numerics.
    pub fn set_telemetry(&mut self, rec: telemetry::SharedRecorder, pid: u32) {
        self.device.set_telemetry(Arc::clone(&rec), pid);
        if let Some(glp) = self.glp.as_ref() {
            glp.tracker().set_telemetry(self.gpu, rec, pid);
        }
    }

    /// Detach the shared telemetry recorder.
    pub fn clear_telemetry(&mut self) {
        self.device.clear_telemetry();
        if let Some(glp) = self.glp.as_ref() {
            glp.tracker().clear_telemetry(self.gpu);
        }
    }

    /// Enable schedule sanitizing: `PlanOnly` statically validates every
    /// dispatch plan (chunk-region disjointness, hazards, wait cycles)
    /// before launch; `Full` additionally replays the executed command
    /// trace with the happens-before checker. Diagnostics accumulate in
    /// [`sanitizer`](ExecCtx::sanitizer).
    pub fn sanitize(mut self, mode: SanitizeMode) -> Self {
        self.sanitizer = Sanitizer::new(mode);
        self
    }

    /// Enable batch-level parallelism for every independent-sample layer
    /// (the paper's extension note), not just convolutions.
    pub fn batch_parallel_all(mut self) -> Self {
        self.batch_parallel_all = true;
        self
    }

    /// Attach the plan linter: every captured plan is additionally
    /// analyzed for performance defects (redundant synchronization, false
    /// serialization, unused events) and peak-memory bounds, with
    /// findings accumulating in the sanitizer's
    /// [`Linter`](sanitizer::Linter). Upgrades the sanitize mode to
    /// `PlanOnly` if checking was off (linting rides on capture-time
    /// validation).
    pub fn lint(mut self) -> Self {
        if !self.sanitizer.is_enabled() {
            self.sanitizer = Sanitizer::new(SanitizeMode::PlanOnly);
        }
        let cfg = LintConfig::from_props(self.device.props());
        self.sanitizer.attach_linter(cfg);
        self
    }

    /// Dispatch a layer's independent kernel groups according to the
    /// context's mode; blocks until the device drains (the inter-layer
    /// synchronization of the paper's §2.1) and records a timing entry.
    pub fn dispatch_groups(
        &mut self,
        layer: &str,
        phase: Phase,
        groups: Vec<Vec<KernelDesc>>,
    ) -> ExecReport {
        let chunks = groups.len();
        self.dispatch_groups_with(layer, phase, chunks, move || groups)
    }

    /// Like [`dispatch_groups`](ExecCtx::dispatch_groups), but builds the
    /// kernel groups lazily: when the site's frozen [`ExecPlan`] is
    /// cached, the plan replays and the closure is never called, so
    /// steady-state iterations skip kernel-descriptor construction
    /// entirely. `chunks` must equal the number of groups the closure
    /// would build (it is part of the cache key).
    pub fn dispatch_groups_with(
        &mut self,
        layer: &str,
        phase: Phase,
        chunks: usize,
        make_groups: impl FnOnce() -> Vec<Vec<KernelDesc>>,
    ) -> ExecReport {
        self.dispatch_groups_sym(layer, phase, chunks, || None, make_groups)
    }

    /// Like [`dispatch_groups_with`](ExecCtx::dispatch_groups_with), with
    /// an optional symbolic declaration of the per-chunk access pattern.
    /// When the layer supplies a [`SymGroupSpec`], capture-time chunk
    /// checking uses a cached symbolic disjointness certificate (one
    /// proof per `net/layer/phase` site) plus an O(chunks) conformance
    /// check instead of O(chunks²) pairwise comparisons, and certified
    /// plans skip the plan-level pair scan too. `make_spec` is only
    /// called at capture with the sanitizer enabled; replays never touch
    /// either closure.
    pub fn dispatch_groups_sym(
        &mut self,
        layer: &str,
        phase: Phase,
        chunks: usize,
        make_spec: impl FnOnce() -> Option<SymGroupSpec>,
        make_groups: impl FnOnce() -> Vec<Vec<KernelDesc>>,
    ) -> ExecReport {
        let report = match self.mode {
            DispatchMode::Naive => {
                let pool = [self.device.default_stream()];
                self.replay_or_capture(layer, phase, chunks, &pool, make_spec, make_groups)
            }
            DispatchMode::FixedStreams(n) => {
                while self.fixed_pool.len() < n as usize {
                    let s = self.device.create_stream();
                    self.fixed_pool.push(s);
                }
                let pool: Vec<StreamId> = self.fixed_pool[..n as usize].to_vec();
                self.replay_or_capture(layer, phase, chunks, &pool, make_spec, make_groups)
            }
            DispatchMode::Glp4nn => {
                debug_assert!(
                    !self.deferred,
                    "Glp4nn dispatch runs eagerly; deferred mode is ignored"
                );
                // Plans are keyed per layer x phase x group count: a
                // serving batcher that varies the batch size profiles each
                // shape once, then every later batch of that shape reuses
                // its cached plan. Validation happens inside the runtime
                // scheduler, against the schedule it actually captures
                // (post fusion/reordering).
                let key = LayerKey {
                    net: self.net_name.clone(),
                    layer: layer.to_string(),
                    phase,
                    chunks,
                };
                let san = self.sanitizer.is_enabled().then_some(&mut self.sanitizer);
                let glp = self
                    .glp
                    .as_mut()
                    .expect("DispatchMode::Glp4nn requires an attached framework");
                glp.try_execute_spec(
                    &mut self.device,
                    self.gpu,
                    &key,
                    make_spec,
                    make_groups,
                    san,
                )
                .unwrap_or_else(|e| panic!("{e}"))
            }
        };
        if self.sanitizer.is_full() && !self.deferred {
            self.sanitizer.check_device(&self.device);
        }
        self.timings.push(LayerTiming {
            layer: layer.to_string(),
            phase,
            elapsed_ns: report.elapsed_ns,
            mode: report.mode,
        });
        report
    }

    /// Launch a single whole-batch kernel on the default stream and wait —
    /// the path used by non-convolution layers, which the paper leaves in
    /// original Caffe form.
    pub fn dispatch_single(&mut self, layer: &str, phase: Phase, kernel: KernelDesc) -> ExecReport {
        self.dispatch_batch(layer, phase, vec![kernel])
    }

    /// Launch a sequence of whole-batch kernels on the default stream.
    pub fn dispatch_batch(
        &mut self,
        layer: &str,
        phase: Phase,
        kernels: Vec<KernelDesc>,
    ) -> ExecReport {
        let pool = [self.device.default_stream()];
        let report = self.replay_or_capture(layer, phase, 1, &pool, || None, move || vec![kernels]);
        if self.sanitizer.is_full() && !self.deferred {
            self.sanitizer.check_device(&self.device);
        }
        self.timings.push(LayerTiming {
            layer: layer.to_string(),
            phase,
            elapsed_ns: report.elapsed_ns,
            mode: report.mode,
        });
        report
    }

    /// Cache key for one dispatch site. Batch size and chunk count pin the
    /// kernel geometry (the frozen-shape contract, as with CUDA Graphs):
    /// for a fixed network, every per-layer kernel descriptor is a pure
    /// function of `(batch, chunks)`, so two calls agreeing on this key
    /// dispatch identical kernels.
    fn plan_key(&self, layer: &str, phase: Phase, chunks: usize, pool_len: usize) -> String {
        let phase = match phase {
            Phase::Forward => "fwd",
            Phase::Backward => "bwd",
        };
        format!(
            "{}/{}/{}/b{}/c{}/p{}",
            self.net_name, layer, phase, self.batch, chunks, pool_len
        )
    }

    /// Shape-independent dispatch-site key (`net/layer/phase`) for the
    /// symbolic-certificate cache: one disjointness proof covers every
    /// batch size and chunk count the site is captured at.
    fn site_key(&self, layer: &str, phase: Phase) -> String {
        let phase = match phase {
            Phase::Forward => "fwd",
            Phase::Backward => "bwd",
        };
        format!("{}/{}/{}", self.net_name, layer, phase)
    }

    /// The capture-once / replay-many core of the self-dispatched modes:
    /// on a cache hit the frozen plan replays (tight issue loop, no
    /// validation, no per-kernel allocation); on a miss the groups are
    /// built, captured round-robin over `pool`, statically validated
    /// once, cached, and replayed.
    fn replay_or_capture(
        &mut self,
        layer: &str,
        phase: Phase,
        chunks: usize,
        pool: &[StreamId],
        make_spec: impl FnOnce() -> Option<SymGroupSpec>,
        make_groups: impl FnOnce() -> Vec<Vec<KernelDesc>>,
    ) -> ExecReport {
        let key = self.plan_key(layer, phase, chunks, pool.len());
        if self.plan_reuse {
            if let Some(plan) = self.plans.get(&key) {
                let plan = Arc::clone(plan);
                self.tel_plan_event("plan.cache_hits", "plan.replay", &key);
                return self.replay_or_issue(&plan);
            }
        }
        let groups = make_groups();
        let mode = if pool.len() <= 1 {
            ExecMode::Profiling // serial on default stream
        } else {
            ExecMode::Concurrent {
                streams: pool.len() as u32,
            }
        };
        let plan = ExecPlan::capture_round_robin(&key, &groups, pool, mode);
        if self.sanitizer.is_enabled() {
            // Wall time of capture-time verification (chunk check + plan
            // validation + lint), surfaced as a telemetry counter.
            // Observation only: the clock is read solely when a recorder
            // is attached, so default runs stay wall-clock-free.
            let t0 = self
                .device
                .telemetry()
                .is_some()
                .then(std::time::Instant::now);
            let site = self.site_key(layer, phase);
            let certified = match make_spec() {
                Some(spec) => self
                    .sanitizer
                    .check_chunks_spec(&key, &site, &spec, &groups),
                None => {
                    self.sanitizer.check_chunks(layer, &groups);
                    false
                }
            };
            plan.validate_certified(&mut self.sanitizer, certified);
            if let (Some(t0), Some(rec)) = (t0, self.device.telemetry()) {
                let mut r = rec.lock().unwrap_or_else(|p| p.into_inner());
                r.counter_add("sanitize.verify_ns", t0.elapsed().as_nanos() as u64);
                if certified {
                    r.counter_add("sanitize.certified_captures", 1);
                }
            }
        }
        self.captures += 1;
        self.tel_plan_event("plan.captures", "plan.capture", &key);
        let plan = Arc::new(plan);
        let report = self.replay_or_issue(&plan);
        self.plans.insert(key, plan);
        report
    }

    /// Mirror one self-dispatched plan-cache event (capture or replay
    /// hit) into the attached telemetry recorder: a counter bump plus a
    /// host-track instant. Zero-cost when no recorder is attached — the
    /// name string is only built behind the attachment check.
    fn tel_plan_event(&self, counter: &str, verb: &str, key: &str) {
        if let Some(rec) = self.device.telemetry() {
            let mut r = rec.lock().unwrap_or_else(|poison| poison.into_inner());
            r.instant(
                self.device.telemetry_pid(),
                telemetry::HOST_TID,
                &format!("{verb} {key}"),
                "plan",
                self.device.now(),
            );
            r.counter_add(counter, 1);
        }
    }

    /// Eager mode: replay the plan (issue + run to completion). Deferred
    /// mode: interpose the inter-layer barrier (events standing in for the
    /// eager mode's device drain) and issue without running; the report
    /// then carries no elapsed time — the caller measures the whole pass.
    fn replay_or_issue(&mut self, plan: &ExecPlan) -> ExecReport {
        if !self.deferred {
            return plan.replay(&mut self.device);
        }
        self.barrier_before(plan.streams());
        plan.issue(&mut self.device);
        ExecReport {
            mode: plan.mode(),
            elapsed_ns: 0,
            kernels: plan.num_kernels(),
        }
    }

    /// Switch deferred-issue mode on or off (see the field docs). Ignored
    /// in `Glp4nn` mode, which must run eagerly (its profiling iteration
    /// measures real elapsed time). Turning deferred off clears the
    /// pending-work bookkeeping — only do so after draining the device.
    pub fn set_deferred(&mut self, on: bool) {
        self.deferred = on && self.mode != DispatchMode::Glp4nn;
        if !self.deferred {
            self.pending.clear();
        }
    }

    /// Whether deferred-issue mode is active.
    pub fn is_deferred(&self) -> bool {
        self.deferred
    }

    /// Join all pending deferred work onto one stream (events from every
    /// other pending stream, waited on the first) and return that stream.
    fn join_pending(&mut self) -> Option<StreamId> {
        let s0 = *self.pending.first()?;
        for &s in &self.pending[1..] {
            let e = self.device.create_event();
            self.device.record_event(s, e);
            self.device.wait_event(s0, e);
        }
        self.pending.truncate(1);
        Some(s0)
    }

    /// A barrier over all deferred work issued so far: an event that fires
    /// once every pending stream drains. `None` when nothing is pending
    /// (eager mode, or nothing issued yet). Used by the data-parallel
    /// trainer to gate a gradient bucket's all-reduce on the layer's
    /// backward.
    pub fn barrier_event(&mut self) -> Option<EventId> {
        let s0 = self.join_pending()?;
        let e = self.device.create_event();
        self.device.record_event(s0, e);
        Some(e)
    }

    /// Make every stream of `pool` wait for all pending deferred work —
    /// the deferred stand-in for the inter-layer synchronization — then
    /// mark `pool` as the new pending set.
    fn barrier_before(&mut self, pool: &[StreamId]) {
        if let Some(s0) = self.join_pending() {
            // Work already joined onto s0; anything issued to s0 follows
            // in FIFO order, so only the other pool streams need gating.
            if pool.iter().any(|&s| s != s0) {
                let b = self.device.create_event();
                self.device.record_event(s0, b);
                for &s in pool {
                    if s != s0 {
                        self.device.wait_event(s, b);
                    }
                }
            }
        }
        self.pending.clear();
        self.pending.extend_from_slice(pool);
    }

    /// Take and clear accumulated layer timings.
    pub fn take_timings(&mut self) -> Vec<LayerTiming> {
        std::mem::take(&mut self.timings)
    }

    /// Total simulated time across recorded timings.
    pub fn total_elapsed_ns(&self) -> SimTime {
        self.timings.iter().map(|t| t.elapsed_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Dim3, KernelCost, LaunchConfig};

    fn groups(n: u64) -> Vec<Vec<KernelDesc>> {
        (0..n)
            .map(|i| {
                vec![KernelDesc::new(
                    "sgemm",
                    LaunchConfig::new(Dim3::linear(16), Dim3::linear(128), 32, 2048),
                    KernelCost::new(2.0e6, 1.0e5),
                )
                .with_tag(i)]
            })
            .collect()
    }

    #[test]
    fn naive_serializes_on_default_stream() {
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        let r = ctx.dispatch_groups("conv1", Phase::Forward, groups(4));
        assert_eq!(r.kernels, 4);
        // All trace entries on stream 0.
        assert!(ctx.device.trace().iter().all(|t| t.stream.is_default()));
    }

    #[test]
    fn fixed_streams_spread_groups() {
        let mut ctx = ExecCtx::with_mode(DeviceProps::p100(), DispatchMode::FixedStreams(4));
        ctx.dispatch_groups("conv1", Phase::Forward, groups(8));
        let used: std::collections::HashSet<u32> =
            ctx.device.trace().iter().map(|t| t.stream.raw()).collect();
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn fixed_streams_faster_than_naive() {
        let t_for = |mode| {
            let mut ctx = ExecCtx::with_mode(DeviceProps::p100(), mode);
            ctx.dispatch_groups("conv1", Phase::Forward, groups(16))
                .elapsed_ns
        };
        let naive = t_for(DispatchMode::Naive);
        let conc = t_for(DispatchMode::FixedStreams(8));
        assert!(conc < naive, "concurrent {conc} vs naive {naive}");
    }

    #[test]
    fn glp4nn_mode_profiles_then_accelerates() {
        let mut ctx = ExecCtx::glp4nn(DeviceProps::k40c());
        ctx.net_name = "testnet".to_string();
        let r1 = ctx.dispatch_groups("conv1", Phase::Forward, groups(12));
        assert_eq!(r1.mode, ExecMode::Profiling);
        let r2 = ctx.dispatch_groups("conv1", Phase::Forward, groups(12));
        assert!(matches!(r2.mode, ExecMode::Concurrent { .. }));
        assert!(r2.elapsed_ns < r1.elapsed_ns);
    }

    #[test]
    fn timings_are_recorded_and_takeable() {
        let mut ctx = ExecCtx::naive(DeviceProps::titan_xp());
        ctx.dispatch_groups("conv1", Phase::Forward, groups(2));
        ctx.dispatch_groups("conv1", Phase::Backward, groups(2));
        assert_eq!(ctx.timings.len(), 2);
        assert!(ctx.total_elapsed_ns() > 0);
        let t = ctx.take_timings();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].phase, Phase::Forward);
        assert_eq!(t[1].phase, Phase::Backward);
        assert!(ctx.timings.is_empty());
    }

    #[test]
    #[should_panic(expected = "requires an attached framework")]
    fn glp4nn_mode_without_framework_panics() {
        let mut ctx = ExecCtx::with_mode(DeviceProps::p100(), DispatchMode::Glp4nn);
        ctx.dispatch_groups("conv1", Phase::Forward, groups(1));
    }
}
