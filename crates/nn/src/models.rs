//! The paper's four evaluation networks (Table 5 layer configurations).
//!
//! All convolution layers carry exactly the `N, C_i, H/W, C_o, F, S, P`
//! values of Table 5. Non-convolution structure follows the corresponding
//! Caffe reference models (`cifar10_quick`, `mnist_siamese`,
//! `bvlc_reference_caffenet`, `bvlc_googlenet`); the GoogLeNet variant is
//! the inception-style subgraph containing the six convolutional units the
//! paper selected from the full 59.

use crate::net::{LayerKind, LayerSpec, NetSpec};

fn conv(name: &str, bottom: &str, top: &str, co: usize, k: usize, s: usize, p: usize) -> LayerSpec {
    LayerSpec {
        name: name.into(),
        kind: LayerKind::Convolution {
            num_output: co,
            kernel: k,
            stride: s,
            pad: p,
        },
        bottoms: vec![bottom.into()],
        tops: vec![top.into()],
    }
}

fn pool(name: &str, bottom: &str, top: &str, method: &str, k: usize, s: usize) -> LayerSpec {
    LayerSpec {
        name: name.into(),
        kind: LayerKind::Pooling {
            method: method.into(),
            kernel: k,
            stride: s,
        },
        bottoms: vec![bottom.into()],
        tops: vec![top.into()],
    }
}

fn relu(name: &str, bottom: &str, top: &str) -> LayerSpec {
    LayerSpec {
        name: name.into(),
        kind: LayerKind::Relu,
        bottoms: vec![bottom.into()],
        tops: vec![top.into()],
    }
}

fn lrn(name: &str, bottom: &str, top: &str) -> LayerSpec {
    LayerSpec {
        name: name.into(),
        kind: LayerKind::Lrn,
        bottoms: vec![bottom.into()],
        tops: vec![top.into()],
    }
}

fn ip(name: &str, bottom: &str, top: &str, n: usize) -> LayerSpec {
    LayerSpec {
        name: name.into(),
        kind: LayerKind::InnerProduct { num_output: n },
        bottoms: vec![bottom.into()],
        tops: vec![top.into()],
    }
}

fn dropout(name: &str, bottom: &str, top: &str, ratio: f32) -> LayerSpec {
    LayerSpec {
        name: name.into(),
        kind: LayerKind::Dropout { ratio },
        bottoms: vec![bottom.into()],
        tops: vec![top.into()],
    }
}

fn softmax_loss(name: &str, scores: &str, labels: &str, top: &str) -> LayerSpec {
    LayerSpec {
        name: name.into(),
        kind: LayerKind::SoftmaxLoss,
        bottoms: vec![scores.into(), labels.into()],
        tops: vec![top.into()],
    }
}

/// CIFAR10-quick: 3 conv layers (Table 5 rows 1-3), batch 100, 32×32×3.
pub fn cifar10_quick(batch: usize, seed: u64) -> NetSpec {
    NetSpec {
        name: "CIFAR10".into(),
        inputs: vec![
            ("data".into(), vec![batch, 3, 32, 32]),
            ("label".into(), vec![batch]),
        ],
        layers: vec![
            conv("conv1", "data", "conv1_o", 32, 5, 1, 2),
            pool("pool1", "conv1_o", "pool1_o", "max", 3, 2),
            relu("relu1", "pool1_o", "relu1_o"),
            conv("conv2", "relu1_o", "conv2_o", 32, 5, 1, 2),
            relu("relu2", "conv2_o", "relu2_o"),
            pool("pool2", "relu2_o", "pool2_o", "ave", 3, 2),
            conv("conv3", "pool2_o", "conv3_o", 64, 5, 1, 2),
            relu("relu3", "conv3_o", "relu3_o"),
            pool("pool3", "relu3_o", "pool3_o", "ave", 3, 2),
            ip("ip1", "pool3_o", "ip1_o", 64),
            ip("ip2", "ip1_o", "ip2_o", 10),
            softmax_loss("loss", "ip2_o", "label", "loss_o"),
        ],
        seed,
    }
}

/// Siamese (twin LeNet): conv1/conv2 and conv1_p/conv2_p (Table 5 rows
/// 4-7), batch 64, 28×28×1 pairs, contrastive loss.
pub fn siamese(batch: usize, seed: u64) -> NetSpec {
    let tower = |suffix: &str, data: &str, seed_note: &str| -> Vec<LayerSpec> {
        let n = |base: &str| format!("{base}{suffix}");
        let _ = seed_note;
        vec![
            conv(&n("conv1"), data, &n("conv1_o"), 20, 5, 1, 0),
            pool(&n("pool1"), &n("conv1_o"), &n("pool1_o"), "max", 2, 2),
            conv(&n("conv2"), &n("pool1_o"), &n("conv2_o"), 50, 5, 1, 0),
            pool(&n("pool2"), &n("conv2_o"), &n("pool2_o"), "max", 2, 2),
            ip(&n("ip1"), &n("pool2_o"), &n("ip1_o"), 500),
            relu(&n("relu1"), &n("ip1_o"), &n("relu1_o")),
            ip(&n("ip2"), &n("relu1_o"), &n("ip2_o"), 10),
            ip(&n("feat"), &n("ip2_o"), &n("feat_o"), 2),
        ]
    };
    let mut layers = tower("", "data", "a");
    layers.extend(tower("_p", "data_p", "b"));
    layers.push(LayerSpec {
        name: "loss".into(),
        kind: LayerKind::ContrastiveLoss { margin: 1.0 },
        bottoms: vec!["feat_o".into(), "feat_o_p".into(), "sim".into()],
        tops: vec!["loss_o".into()],
    });
    NetSpec {
        name: "Siamese".into(),
        inputs: vec![
            ("data".into(), vec![batch, 1, 28, 28]),
            ("data_p".into(), vec![batch, 1, 28, 28]),
            ("sim".into(), vec![batch]),
        ],
        layers,
        seed,
    }
}

/// CaffeNet (AlexNet variant): conv1-conv5 (Table 5 rows 8-12), batch 256,
/// 227×227×3.
pub fn caffenet(batch: usize, seed: u64) -> NetSpec {
    NetSpec {
        name: "CaffeNet".into(),
        inputs: vec![
            ("data".into(), vec![batch, 3, 227, 227]),
            ("label".into(), vec![batch]),
        ],
        layers: vec![
            conv("conv1", "data", "conv1_o", 96, 11, 4, 0),
            relu("relu1", "conv1_o", "relu1_o"),
            pool("pool1", "relu1_o", "pool1_o", "max", 3, 2),
            lrn("norm1", "pool1_o", "norm1_o"),
            conv("conv2", "norm1_o", "conv2_o", 256, 5, 1, 2),
            relu("relu2", "conv2_o", "relu2_o"),
            pool("pool2", "relu2_o", "pool2_o", "max", 3, 2),
            lrn("norm2", "pool2_o", "norm2_o"),
            conv("conv3", "norm2_o", "conv3_o", 384, 3, 1, 1),
            relu("relu3", "conv3_o", "relu3_o"),
            conv("conv4", "relu3_o", "conv4_o", 384, 3, 1, 1),
            relu("relu4", "conv4_o", "relu4_o"),
            conv("conv5", "relu4_o", "conv5_o", 256, 3, 1, 1),
            relu("relu5", "conv5_o", "relu5_o"),
            pool("pool5", "relu5_o", "pool5_o", "max", 3, 2),
            ip("fc6", "pool5_o", "fc6_o", 4096),
            relu("relu6", "fc6_o", "relu6_o"),
            dropout("drop6", "relu6_o", "drop6_o", 0.5),
            ip("fc7", "drop6_o", "fc7_o", 4096),
            relu("relu7", "fc7_o", "relu7_o"),
            dropout("drop7", "relu7_o", "drop7_o", 0.5),
            ip("fc8", "drop7_o", "fc8_o", 1000),
            softmax_loss("loss", "fc8_o", "label", "loss_o"),
        ],
        seed,
    }
}

/// GoogLeNet subgraph: an inception-style block over a `832×7×7` input
/// containing the paper's six selected convolutional units conv_1..conv_6
/// (Table 5 rows 13-18), batch 32.
pub fn googlenet_subset(batch: usize, seed: u64) -> NetSpec {
    NetSpec {
        name: "GoogLeNet".into(),
        inputs: vec![
            ("data".into(), vec![batch, 832, 7, 7]),
            ("label".into(), vec![batch]),
        ],
        layers: vec![
            // Branch 1: conv_3 (832 -> 384, 1x1).
            conv("conv_3", "data", "b1_o", 384, 1, 1, 0),
            relu("relu_b1", "b1_o", "b1_r"),
            // Branch 2: conv_5 (832 -> 192, 1x1) then conv_4 (192 -> 384, 3x3 p1).
            conv("conv_5", "data", "b2_reduce", 192, 1, 1, 0),
            relu("relu_b2a", "b2_reduce", "b2_reduce_r"),
            conv("conv_4", "b2_reduce_r", "b2_o", 384, 3, 1, 1),
            relu("relu_b2b", "b2_o", "b2_r"),
            // Branch 3: 1x1 reduce to 160 (auxiliary unit) then conv_1
            // (160 -> 320, 3x3 p1).
            conv("reduce_160", "data", "b3_reduce", 160, 1, 1, 0),
            relu("relu_b3a", "b3_reduce", "b3_reduce_r"),
            conv("conv_1", "b3_reduce_r", "b3_o", 320, 3, 1, 1),
            relu("relu_b3b", "b3_o", "b3_r"),
            // Branch 4: conv_2 (832 -> 32, 1x1).
            conv("conv_2", "data", "b4_o", 32, 1, 1, 0),
            relu("relu_b4", "b4_o", "b4_r"),
            // Branch 5: conv_6 (832 -> 48, 1x1).
            conv("conv_6", "data", "b5_o", 48, 1, 1, 0),
            relu("relu_b5", "b5_o", "b5_r"),
            // Join: 384 + 384 + 320 + 32 + 48 = 1168 channels.
            LayerSpec {
                name: "inception_out".into(),
                kind: LayerKind::Concat,
                bottoms: vec![
                    "b1_r".into(),
                    "b2_r".into(),
                    "b3_r".into(),
                    "b4_r".into(),
                    "b5_r".into(),
                ],
                tops: vec!["cat_o".into()],
            },
            pool("pool_avg", "cat_o", "pool_o", "ave", 7, 1),
            dropout("drop", "pool_o", "drop_o", 0.4),
            ip("classifier", "drop_o", "fc_o", 1000),
            softmax_loss("loss", "fc_o", "label", "loss_o"),
        ],
        seed,
    }
}

/// One Table 5 row: `(net, layer, N, C_i, H/W, C_o, F, S, P)`.
pub type Table5Row = (
    &'static str,
    &'static str,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
);

/// Table 5 rows: `(net, layer, N, C_i, H/W, C_o, F, S, P)`.
pub fn table5_rows() -> Vec<Table5Row> {
    vec![
        ("CIFAR10", "conv1", 100, 3, 32, 32, 5, 1, 2),
        ("CIFAR10", "conv2", 100, 32, 16, 32, 5, 1, 2),
        ("CIFAR10", "conv3", 100, 32, 8, 64, 5, 1, 2),
        ("Siamese", "conv1", 64, 1, 28, 20, 5, 1, 0),
        ("Siamese", "conv2", 64, 20, 12, 50, 5, 1, 0),
        ("Siamese", "conv1_p", 64, 1, 28, 20, 5, 1, 0),
        ("Siamese", "conv2_p", 64, 20, 12, 50, 5, 1, 0),
        ("CaffeNet", "conv1", 256, 3, 227, 96, 11, 4, 0),
        ("CaffeNet", "conv2", 256, 96, 27, 256, 5, 1, 2),
        ("CaffeNet", "conv3", 256, 256, 13, 384, 3, 1, 1),
        ("CaffeNet", "conv4", 256, 384, 13, 384, 3, 1, 1),
        ("CaffeNet", "conv5", 256, 384, 13, 256, 3, 1, 1),
        ("GoogLeNet", "conv_1", 32, 160, 7, 320, 3, 1, 1),
        ("GoogLeNet", "conv_2", 32, 832, 7, 32, 1, 1, 0),
        ("GoogLeNet", "conv_3", 32, 832, 7, 384, 1, 1, 0),
        ("GoogLeNet", "conv_4", 32, 192, 7, 384, 3, 1, 1),
        ("GoogLeNet", "conv_5", 32, 832, 7, 192, 1, 1, 0),
        ("GoogLeNet", "conv_6", 32, 832, 7, 48, 1, 1, 0),
    ]
}

/// Networks resolvable by name through [`spec_by_name`] /
/// [`crate::Net::by_name`].
pub const MODEL_NAMES: [&str; 4] = ["CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"];

/// A model name that [`spec_by_name`] does not recognize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModelError {
    /// The name that failed to resolve.
    pub requested: String,
}

impl std::fmt::Display for UnknownModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown network {:?}; valid names: {}",
            self.requested,
            MODEL_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownModelError {}

/// Build a named evaluation network's spec at an explicit batch size.
pub fn spec_by_name(net: &str, batch: usize, seed: u64) -> Result<NetSpec, UnknownModelError> {
    match net {
        "CIFAR10" => Ok(cifar10_quick(batch, seed)),
        "Siamese" => Ok(siamese(batch, seed)),
        "CaffeNet" => Ok(caffenet(batch, seed)),
        "GoogLeNet" => Ok(googlenet_subset(batch, seed)),
        other => Err(UnknownModelError {
            requested: other.to_string(),
        }),
    }
}

/// Default batch sizes per network (Table 5's `N` column).
pub fn default_batch(net: &str) -> Result<usize, UnknownModelError> {
    match net {
        "CIFAR10" => Ok(100),
        "Siamese" => Ok(64),
        "CaffeNet" => Ok(256),
        "GoogLeNet" => Ok(32),
        other => Err(UnknownModelError {
            requested: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecCtx;
    use crate::net::Net;
    use gpu_sim::DeviceProps;

    #[test]
    fn cifar10_builds_and_shapes_match_table5() {
        let mut net = Net::from_spec(&cifar10_quick(10, 1));
        let mut ctx = ExecCtx::naive(DeviceProps::p100()).timing_only();
        net.forward(&mut ctx);
        // conv2 input must be 32ch 16x16, conv3 input 32ch 8x8.
        assert_eq!(net.blob("relu1_o").shape(), &[10, 32, 16, 16]);
        assert_eq!(net.blob("pool2_o").shape(), &[10, 32, 8, 8]);
        assert_eq!(net.blob("ip2_o").shape(), &[10, 10]);
    }

    #[test]
    fn siamese_builds_with_twin_towers() {
        let spec = siamese(8, 2);
        let mut net = Net::from_spec(&spec);
        let mut ctx = ExecCtx::naive(DeviceProps::p100()).timing_only();
        net.forward(&mut ctx);
        // conv2 sees 20ch 12x12 (Table 5 row 5).
        assert_eq!(net.blob("pool1_o").shape(), &[8, 20, 12, 12]);
        assert_eq!(net.blob("pool1_o_p").shape(), &[8, 20, 12, 12]);
        assert_eq!(net.blob("feat_o").shape(), &[8, 2]);
    }

    #[test]
    fn caffenet_builds_with_table5_shapes() {
        let mut net = Net::from_spec(&caffenet(4, 3));
        let mut ctx = ExecCtx::naive(DeviceProps::p100()).timing_only();
        net.forward(&mut ctx);
        assert_eq!(net.blob("conv1_o").shape(), &[4, 96, 55, 55]);
        assert_eq!(net.blob("norm1_o").shape(), &[4, 96, 27, 27]); // conv2 input H=27
        assert_eq!(net.blob("norm2_o").shape(), &[4, 256, 13, 13]); // conv3 input H=13
        assert_eq!(net.blob("conv5_o").shape(), &[4, 256, 13, 13]);
        assert_eq!(net.blob("fc8_o").shape(), &[4, 1000]);
    }

    #[test]
    fn googlenet_contains_all_six_units() {
        let spec = googlenet_subset(2, 4);
        let names: Vec<&str> = spec.layers.iter().map(|l| l.name.as_str()).collect();
        for unit in ["conv_1", "conv_2", "conv_3", "conv_4", "conv_5", "conv_6"] {
            assert!(names.contains(&unit), "missing {unit}");
        }
        let mut net = Net::from_spec(&spec);
        let mut ctx = ExecCtx::naive(DeviceProps::p100()).timing_only();
        net.forward(&mut ctx);
        assert_eq!(net.blob("cat_o").shape(), &[2, 1168, 7, 7]);
    }

    #[test]
    fn table5_has_18_conv_rows() {
        let rows = table5_rows();
        assert_eq!(rows.len(), 18);
        assert_eq!(rows.iter().filter(|r| r.0 == "GoogLeNet").count(), 6);
        assert_eq!(default_batch("CaffeNet"), Ok(256));
        let err = default_batch("AlexNet").unwrap_err();
        assert!(
            err.to_string().contains("CIFAR10"),
            "error lists valid names: {err}"
        );
        assert!(spec_by_name("nope", 4, 1).is_err());
        assert_eq!(spec_by_name("CIFAR10", 4, 1).unwrap(), cifar10_quick(4, 1));
    }

    #[test]
    fn small_batch_cifar_trains_end_to_end() {
        use crate::data::SyntheticDataset;
        use crate::solver::{Solver, SolverConfig};
        let net = Net::from_spec(&cifar10_quick(8, 5));
        let mut solver = Solver::new(net, SolverConfig::default());
        let ds = SyntheticDataset::cifar_like(5);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..6 {
            let (mut data, mut label) = (
                std::mem::replace(solver.net.blob_mut("data"), tensor::Blob::empty()),
                std::mem::replace(solver.net.blob_mut("label"), tensor::Blob::empty()),
            );
            ds.fill_batch(it * 8, &mut data, &mut label);
            *solver.net.blob_mut("data") = data;
            *solver.net.blob_mut("label") = label;
            let loss = solver.step(&mut ctx);
            if it == 0 {
                first = loss;
            }
            last = loss;
            assert!(loss.is_finite());
        }
        assert!(
            last < first * 1.5,
            "training must not diverge: {first} -> {last}"
        );
    }
}
