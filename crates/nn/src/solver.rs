//! SGD solver with momentum, weight decay and learning-rate policies —
//! the batch training algorithm of the paper's §2.1.
//!
//! Training with GLP4NN must "converge to a stable state ... as the
//! execution without GLP4NN" (§3.3.1): the solver's update rule is pure
//! CPU arithmetic over parameter blobs, shared verbatim between dispatch
//! modes, so the whole optimization trajectory is bitwise identical.

use crate::exec::ExecCtx;
use crate::net::Net;
use serde::{Deserialize, Serialize};

/// Learning-rate schedule (Caffe's `lr_policy`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub enum LrPolicy {
    /// Constant learning rate.
    Fixed,
    /// `base_lr · gamma^floor(iter/step)`.
    Step {
        /// Decay factor.
        gamma: f32,
        /// Iterations per decay.
        step: usize,
    },
    /// `base_lr · (1 + gamma·iter)^(−power)` (Caffe's `inv`).
    Inv {
        /// Rate of decay.
        gamma: f32,
        /// Exponent.
        power: f32,
    },
    /// `base_lr · gamma^iter` (Caffe's `exp`).
    Exp {
        /// Per-iteration decay factor.
        gamma: f32,
    },
    /// `base_lr · (1 − iter/max_iter)^power` (Caffe's `poly`).
    Poly {
        /// Exponent.
        power: f32,
        /// Total planned iterations.
        max_iter: usize,
    },
}

/// Momentum flavour.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq, Default)]
pub enum MomentumKind {
    /// Classical heavy-ball momentum (Caffe's `SGD` solver).
    #[default]
    Classical,
    /// Nesterov accelerated gradient (Caffe's `Nesterov` solver).
    Nesterov,
}

/// Solver hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct SolverConfig {
    /// Base learning rate.
    pub base_lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Momentum flavour (classical or Nesterov).
    pub momentum_kind: MomentumKind,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Learning-rate schedule.
    pub policy: LrPolicy,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            base_lr: 0.01,
            momentum: 0.9,
            momentum_kind: MomentumKind::Classical,
            weight_decay: 5e-4,
            policy: LrPolicy::Fixed,
        }
    }
}

/// SGD with momentum over a [`Net`].
pub struct Solver {
    /// The network being trained.
    pub net: Net,
    cfg: SolverConfig,
    iter: usize,
    /// Momentum buffers, one per parameter blob (flattened).
    history: Vec<Vec<f32>>,
}

impl Solver {
    /// New solver over `net`.
    pub fn new(net: Net, cfg: SolverConfig) -> Self {
        Solver {
            net,
            cfg,
            iter: 0,
            history: Vec::new(),
        }
    }

    /// Current iteration count.
    pub fn iteration(&self) -> usize {
        self.iter
    }

    /// Learning rate at the current iteration.
    pub fn current_lr(&self) -> f32 {
        match self.cfg.policy {
            LrPolicy::Fixed => self.cfg.base_lr,
            LrPolicy::Step { gamma, step } => {
                self.cfg.base_lr * gamma.powi((self.iter / step.max(1)) as i32)
            }
            LrPolicy::Inv { gamma, power } => {
                self.cfg.base_lr * (1.0 + gamma * self.iter as f32).powf(-power)
            }
            LrPolicy::Exp { gamma } => self.cfg.base_lr * gamma.powi(self.iter as i32),
            LrPolicy::Poly { power, max_iter } => {
                let frac = 1.0 - (self.iter as f32 / max_iter.max(1) as f32).min(1.0);
                self.cfg.base_lr * frac.powf(power)
            }
        }
    }

    /// One training iteration: zero grads → forward → backward → update.
    /// Inputs must already be loaded into the net's input blobs. Returns
    /// the loss.
    pub fn step(&mut self, ctx: &mut ExecCtx) -> f32 {
        self.net.zero_param_diffs();
        let loss = self.net.forward(ctx);
        self.net.backward(ctx);
        let lr = self.current_lr();
        let momentum = self.cfg.momentum;
        let decay = self.cfg.weight_decay;
        let mut params = self.net.params_mut();
        if self.history.len() != params.len() {
            self.history = params.iter().map(|p| vec![0.0; p.count()]).collect();
        }
        let nesterov = self.cfg.momentum_kind == MomentumKind::Nesterov;
        for (p, h) in params.iter_mut().zip(&mut self.history) {
            let (data, diff) = p.data_and_diff_mut();
            for i in 0..data.len() {
                let g = diff[i] + decay * data[i];
                let prev = h[i];
                h[i] = momentum * h[i] + lr * g;
                if nesterov {
                    // Caffe's Nesterov update: w -= (1+m)·v_new − m·v_old.
                    data[i] -= (1.0 + momentum) * h[i] - momentum * prev;
                } else {
                    data[i] -= h[i];
                }
            }
        }
        self.iter += 1;
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{LayerKind, LayerSpec, NetSpec};
    use gpu_sim::DeviceProps;

    fn tiny_net() -> Net {
        Net::from_spec(&NetSpec {
            name: "tiny".into(),
            inputs: vec![("data".into(), vec![8, 4]), ("label".into(), vec![8])],
            layers: vec![
                LayerSpec {
                    name: "ip".into(),
                    kind: LayerKind::InnerProduct { num_output: 2 },
                    bottoms: vec!["data".into()],
                    tops: vec!["scores".into()],
                },
                LayerSpec {
                    name: "loss".into(),
                    kind: LayerKind::SoftmaxLoss,
                    bottoms: vec!["scores".into(), "label".into()],
                    tops: vec!["loss_out".into()],
                },
            ],
            seed: 5,
        })
    }

    fn load_separable(net: &mut Net) {
        // Class 0: positive first feature, class 1: negative.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            let cls = i % 2;
            let sign = if cls == 0 { 1.0 } else { -1.0 };
            data.extend_from_slice(&[sign * 1.0, sign * 0.5, 0.1, -0.1]);
            labels.push(cls as f32);
        }
        net.blob_mut("data").data_mut().copy_from_slice(&data);
        net.blob_mut("label").data_mut().copy_from_slice(&labels);
    }

    #[test]
    fn loss_decreases_on_separable_data() {
        let mut net = tiny_net();
        load_separable(&mut net);
        let mut solver = Solver::new(
            net,
            SolverConfig {
                base_lr: 0.5,
                momentum: 0.9,
                momentum_kind: MomentumKind::Classical,
                weight_decay: 0.0,
                policy: LrPolicy::Fixed,
            },
        );
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        let first = solver.step(&mut ctx);
        let mut last = first;
        for _ in 0..30 {
            load_separable(&mut solver.net);
            last = solver.step(&mut ctx);
        }
        assert!(
            last < first * 0.3,
            "loss should drop: first {first}, last {last}"
        );
    }

    #[test]
    fn lr_policies() {
        let net = tiny_net();
        let mut s = Solver::new(
            net,
            SolverConfig {
                base_lr: 1.0,
                momentum: 0.0,
                momentum_kind: MomentumKind::Classical,
                weight_decay: 0.0,
                policy: LrPolicy::Step {
                    gamma: 0.1,
                    step: 10,
                },
            },
        );
        assert!((s.current_lr() - 1.0).abs() < 1e-7);
        s.iter = 10;
        assert!((s.current_lr() - 0.1).abs() < 1e-7);
        s.iter = 25;
        assert!((s.current_lr() - 0.01).abs() < 1e-7);

        s.cfg.policy = LrPolicy::Inv {
            gamma: 1.0,
            power: 1.0,
        };
        s.iter = 0;
        assert!((s.current_lr() - 1.0).abs() < 1e-7);
        s.iter = 1;
        assert!((s.current_lr() - 0.5).abs() < 1e-7);

        s.cfg.policy = LrPolicy::Exp { gamma: 0.5 };
        s.iter = 3;
        assert!((s.current_lr() - 0.125).abs() < 1e-7);

        s.cfg.policy = LrPolicy::Poly {
            power: 2.0,
            max_iter: 10,
        };
        s.iter = 5;
        assert!((s.current_lr() - 0.25).abs() < 1e-7);
        s.iter = 10;
        assert_eq!(s.current_lr(), 0.0);
        s.iter = 20; // past max_iter clamps at 0
        assert_eq!(s.current_lr(), 0.0);
    }

    #[test]
    fn nesterov_converges_and_differs_from_classical() {
        let run = |kind: MomentumKind| -> Vec<f32> {
            let mut net = tiny_net();
            load_separable(&mut net);
            let mut s = Solver::new(
                net,
                SolverConfig {
                    base_lr: 0.2,
                    momentum: 0.9,
                    momentum_kind: kind,
                    weight_decay: 0.0,
                    policy: LrPolicy::Fixed,
                },
            );
            let mut ctx = ExecCtx::naive(DeviceProps::p100());
            (0..15)
                .map(|_| {
                    load_separable(&mut s.net);
                    s.step(&mut ctx)
                })
                .collect()
        };
        let classical = run(MomentumKind::Classical);
        let nesterov = run(MomentumKind::Nesterov);
        assert!(
            nesterov.last().unwrap() < &(classical[0] * 0.5),
            "Nesterov must converge: {nesterov:?}"
        );
        assert_ne!(
            classical.last().unwrap().to_bits(),
            nesterov.last().unwrap().to_bits(),
            "the two momentum rules must differ"
        );
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut net = tiny_net();
        load_separable(&mut net);
        let mut s = Solver::new(
            net,
            SolverConfig {
                base_lr: 0.1,
                momentum: 0.9,
                momentum_kind: MomentumKind::Classical,
                weight_decay: 0.0,
                policy: LrPolicy::Fixed,
            },
        );
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        s.step(&mut ctx);
        let v1: f32 = s.history[0].iter().map(|v| v.abs()).sum();
        load_separable(&mut s.net);
        s.step(&mut ctx);
        let v2: f32 = s.history[0].iter().map(|v| v.abs()).sum();
        assert!(v1 > 0.0);
        assert!(v2 != v1);
        assert_eq!(s.iteration(), 2);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        // Zero-gradient situation: decay alone should shrink weights.
        let net = tiny_net();
        let mut s = Solver::new(
            net,
            SolverConfig {
                base_lr: 0.1,
                momentum: 0.0,
                momentum_kind: MomentumKind::Classical,
                weight_decay: 1.0,
                policy: LrPolicy::Fixed,
            },
        );
        // Use uniform labels/zero data so gradients ~0 for weights.
        s.net.blob_mut("data").zero_data();
        s.net
            .blob_mut("label")
            .data_mut()
            .iter_mut()
            .for_each(|v| *v = 0.0);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        // First step lazily initializes the parameters.
        s.step(&mut ctx);
        let w0: f32 = s.net.params_mut()[0].data_l2();
        assert!(w0 > 0.0, "weights must be initialized after first step");
        s.net.blob_mut("data").zero_data();
        s.step(&mut ctx);
        let w1: f32 = s.net.params_mut()[0].data_l2();
        assert!(w1 < w0, "decay must shrink: {w0} -> {w1}");
    }
}
