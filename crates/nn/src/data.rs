//! Deterministic synthetic datasets shaped like the paper's Table 4.
//!
//! The real MNIST / CIFAR-10 / ImageNet archives are unavailable offline,
//! and the paper uses them for two things only: tensor *shapes* (which
//! drive kernel configurations and therefore all timing results) and
//! *learnability* (the Fig. 11 convergence experiment). Both are preserved
//! here: each class has a deterministic random prototype image and samples
//! are `prototype + Gaussian-ish noise`, generated statelessly from
//! `(seed, class, pixel)` / `(seed, index, pixel)` hashes, so any sample
//! can be materialized in O(pixels) without storing a dataset (ImageNet's
//! 1000 × 227 × 227 × 3 prototypes would not fit in memory otherwise).

use tensor::Blob;

/// splitmix64 — a stateless 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform `[-1, 1)` from a hash.
fn uniform(h: u64) -> f32 {
    ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
}

/// A synthetic labelled-image dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticDataset {
    /// Dataset name (Table 4 row).
    pub name: &'static str,
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Nominal training-set size (Table 4).
    pub train_images: usize,
    /// Nominal test-set size (Table 4).
    pub test_images: usize,
    seed: u64,
}

impl SyntheticDataset {
    /// MNIST-shaped: 60k/10k, 28×28 grayscale, 10 classes.
    pub fn mnist_like(seed: u64) -> Self {
        SyntheticDataset {
            name: "MNIST",
            classes: 10,
            channels: 1,
            height: 28,
            width: 28,
            train_images: 60_000,
            test_images: 10_000,
            seed,
        }
    }

    /// CIFAR-10-shaped: 50k/10k, 32×32 RGB, 10 classes.
    pub fn cifar_like(seed: u64) -> Self {
        SyntheticDataset {
            name: "Cifar10",
            classes: 10,
            channels: 3,
            height: 32,
            width: 32,
            train_images: 50_000,
            test_images: 10_000,
            seed,
        }
    }

    /// ImageNet-shaped: 1.2M/150k, 256×256 RGB stored, 227×227 crops (the
    /// CaffeNet input), 1000 classes.
    pub fn imagenet_like(seed: u64) -> Self {
        SyntheticDataset {
            name: "ImageNet",
            classes: 1000,
            channels: 3,
            height: 227,
            width: 227,
            train_images: 1_200_000,
            test_images: 150_000,
            seed,
        }
    }

    /// Pixels per image.
    pub fn image_size(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Label of sample `index` (round-robin over classes, then shuffled by
    /// hash so batches are class-mixed).
    pub fn label(&self, index: usize) -> usize {
        (mix(self.seed ^ (index as u64).wrapping_mul(0xA24BAED4963EE407)) % self.classes as u64)
            as usize
    }

    /// Write sample `index` into `out` (length = `image_size`).
    pub fn sample_into(&self, index: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.image_size());
        let label = self.label(index) as u64;
        let proto_seed = mix(self.seed ^ label.wrapping_mul(0xD6E8FEB86659FD93));
        let noise_seed = mix(self.seed ^ (index as u64).wrapping_mul(0xCA5A826395121157));
        for (i, v) in out.iter_mut().enumerate() {
            let proto = uniform(mix(proto_seed ^ i as u64)) * 0.8;
            let noise = uniform(mix(noise_seed ^ i as u64)) * 0.25;
            *v = proto + noise;
        }
    }

    /// Fill a batch of images + labels starting at sample `start`.
    /// `data` must be `[n, channels, height, width]`, `labels` `[n]`.
    pub fn fill_batch(&self, start: usize, data: &mut Blob, labels: &mut Blob) {
        let n = data.num();
        assert_eq!(data.count(), n * self.image_size(), "batch shape mismatch");
        assert_eq!(labels.count(), n);
        let stride = self.image_size();
        let d = data.data_mut();
        for s in 0..n {
            self.sample_into(start + s, &mut d[s * stride..(s + 1) * stride]);
        }
        let l = labels.data_mut();
        for (s, v) in l.iter_mut().enumerate().take(n) {
            *v = self.label(start + s) as f32;
        }
    }

    /// Fill a Siamese pair batch: two image blobs plus a similarity label
    /// (1 when the pair shares a class). Pairs alternate similar /
    /// dissimilar deterministically.
    pub fn fill_pair_batch(
        &self,
        start: usize,
        data_a: &mut Blob,
        data_b: &mut Blob,
        sim: &mut Blob,
    ) {
        let n = data_a.num();
        let stride = self.image_size();
        let (da, db, ds) = (data_a.data_mut(), data_b.data_mut(), sim.data_mut());
        for s in 0..n {
            let ia = start + 2 * s;
            // Pick a partner with the same or a different label.
            let want_similar = s % 2 == 0;
            let la = self.label(ia);
            let mut ib = ia + 1;
            for probe in 0..64 {
                ib = ia + 1 + probe;
                let same = self.label(ib) == la;
                if same == want_similar {
                    break;
                }
            }
            self.sample_into(ia, &mut da[s * stride..(s + 1) * stride]);
            self.sample_into(ib, &mut db[s * stride..(s + 1) * stride]);
            ds[s] = if self.label(ib) == la { 1.0 } else { 0.0 };
        }
    }

    /// The Table 4 rows (name, train, test, pixel string, classes).
    pub fn table4() -> Vec<(SyntheticDataset, &'static str)> {
        vec![
            (Self::mnist_like(1), "28x28"),
            (Self::cifar_like(1), "32x32"),
            (Self::imagenet_like(1), "256x256"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shapes() {
        let m = SyntheticDataset::mnist_like(0);
        assert_eq!((m.train_images, m.test_images), (60_000, 10_000));
        assert_eq!(m.image_size(), 784);
        let c = SyntheticDataset::cifar_like(0);
        assert_eq!((c.train_images, c.test_images), (50_000, 10_000));
        assert_eq!(c.image_size(), 3 * 32 * 32);
        let i = SyntheticDataset::imagenet_like(0);
        assert_eq!(i.classes, 1000);
        assert_eq!(i.image_size(), 3 * 227 * 227);
    }

    #[test]
    fn samples_are_deterministic() {
        let d = SyntheticDataset::cifar_like(7);
        let mut a = vec![0.0f32; d.image_size()];
        let mut b = vec![0.0f32; d.image_size()];
        d.sample_into(123, &mut a);
        d.sample_into(123, &mut b);
        assert_eq!(a, b);
        d.sample_into(124, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn same_class_samples_are_correlated() {
        let d = SyntheticDataset::mnist_like(3);
        // Find two samples of the same class and one of a different class.
        let l0 = d.label(0);
        let same = (1..200).find(|&i| d.label(i) == l0).unwrap();
        let diff = (1..200).find(|&i| d.label(i) != l0).unwrap();
        let mut x0 = vec![0.0f32; d.image_size()];
        let mut xs = vec![0.0f32; d.image_size()];
        let mut xd = vec![0.0f32; d.image_size()];
        d.sample_into(0, &mut x0);
        d.sample_into(same, &mut xs);
        d.sample_into(diff, &mut xd);
        let corr =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>() };
        assert!(
            corr(&x0, &xs) > corr(&x0, &xd),
            "same-class correlation must dominate"
        );
    }

    #[test]
    fn labels_cover_all_classes() {
        let d = SyntheticDataset::cifar_like(5);
        let seen: std::collections::HashSet<usize> = (0..500).map(|i| d.label(i)).collect();
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn fill_batch_writes_shapes() {
        let d = SyntheticDataset::cifar_like(2);
        let mut data = Blob::nchw(4, 3, 32, 32);
        let mut labels = Blob::new(&[4]);
        d.fill_batch(100, &mut data, &mut labels);
        assert!(data.data().iter().any(|&v| v != 0.0));
        assert!(labels.data().iter().all(|&v| v < 10.0));
    }

    #[test]
    fn pair_batches_alternate_similarity() {
        let d = SyntheticDataset::mnist_like(9);
        let mut a = Blob::nchw(6, 1, 28, 28);
        let mut b = Blob::nchw(6, 1, 28, 28);
        let mut sim = Blob::new(&[6]);
        d.fill_pair_batch(0, &mut a, &mut b, &mut sim);
        // Even slots want similar pairs; probing usually finds one.
        let n_similar = sim.data().iter().filter(|&&v| v == 1.0).count();
        assert!(
            n_similar >= 2,
            "expected some similar pairs, got {n_similar}"
        );
        assert!(n_similar < 6, "expected some dissimilar pairs");
    }
}
