//! Activity buffer pool.
//!
//! CUPTI delivers activity records through a buffer-request / buffer-complete
//! protocol: the client pre-allocates fixed-size buffers; CUPTI fills one at
//! a time and hands full buffers back. The pool's resident size is the
//! dominant term of GLP4NN's memory overhead (`mem_cupti` in Fig. 10 — "much
//! larger than the other two parts in our experiments").

use crate::activity::ActivityRecord;
use bytes::{Bytes, BytesMut};

/// Default size of one activity buffer (CUPTI's default is 3 MiB; the
/// compact tracker uses smaller 512 KiB buffers).
pub const DEFAULT_BUFFER_BYTES: usize = 512 * 1024;

/// Default number of buffers kept in flight (double buffering + spare).
pub const DEFAULT_POOL_BUFFERS: usize = 2;

/// One fixed-capacity activity buffer being filled.
#[derive(Debug)]
pub struct ActivityBuffer {
    buf: BytesMut,
    capacity: usize,
    records: usize,
}

impl ActivityBuffer {
    /// Allocate an empty buffer with `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        ActivityBuffer {
            buf: BytesMut::with_capacity(capacity),
            capacity,
            records: 0,
        }
    }

    /// Try to append a record; `false` when the buffer is full.
    pub fn push(&mut self, rec: &ActivityRecord) -> bool {
        if self.buf.len() + rec.encoded_len() > self.capacity {
            return false;
        }
        rec.encode(&mut self.buf);
        self.records += 1;
        true
    }

    /// Number of records held.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Bytes used.
    pub fn used(&self) -> usize {
        self.buf.len()
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Freeze and take the contents, resetting the buffer.
    pub fn complete(&mut self) -> Bytes {
        self.records = 0;
        self.buf.split().freeze()
    }
}

/// A pool of activity buffers with CUPTI's requested/completed life-cycle.
#[derive(Debug)]
pub struct BufferPool {
    current: ActivityBuffer,
    completed: Vec<Bytes>,
    buffer_bytes: usize,
    num_buffers: usize,
    dropped: usize,
}

impl BufferPool {
    /// Pool with `num_buffers` buffers of `buffer_bytes` each.
    pub fn new(buffer_bytes: usize, num_buffers: usize) -> Self {
        BufferPool {
            current: ActivityBuffer::new(buffer_bytes),
            completed: Vec::new(),
            buffer_bytes,
            num_buffers: num_buffers.max(1),
            dropped: 0,
        }
    }

    /// Append a record, rotating to a fresh buffer when the current one
    /// fills. Records are dropped (and counted) if every buffer in the pool
    /// is already completed and unread — CUPTI behaves the same way when
    /// the client does not drain fast enough.
    pub fn push(&mut self, rec: &ActivityRecord) {
        if self.current.push(rec) {
            return;
        }
        if self.completed.len() + 1 >= self.num_buffers {
            self.dropped += 1;
            return;
        }
        let full = self.current.complete();
        self.completed.push(full);
        if !self.current.push(rec) {
            // Record larger than a whole buffer: drop.
            self.dropped += 1;
        }
    }

    /// Complete the current buffer and return all full buffers, emptying
    /// the pool (the client-side "drain").
    pub fn drain(&mut self) -> Vec<Bytes> {
        if self.current.records() > 0 {
            let b = self.current.complete();
            self.completed.push(b);
        }
        std::mem::take(&mut self.completed)
    }

    /// Records dropped due to back-pressure.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Resident memory the pool pins, in bytes (`mem_cupti`).
    pub fn resident_bytes(&self) -> usize {
        self.buffer_bytes * self.num_buffers
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(DEFAULT_BUFFER_BYTES, DEFAULT_POOL_BUFFERS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityKind;

    fn rec(name: &str) -> ActivityRecord {
        ActivityRecord {
            kind: ActivityKind::Kernel,
            name: name.to_string(),
            tag: 0,
            stream: 0,
            grid: (1, 1, 1),
            block: (32, 1, 1),
            regs_per_thread: 16,
            smem_static: 0,
            smem_dynamic: 0,
            start_ns: 0,
            end_ns: 10,
        }
    }

    #[test]
    fn buffer_fills_and_rejects() {
        let r = rec("kernel_name");
        let mut b = ActivityBuffer::new(r.encoded_len() * 2 + 1);
        assert!(b.push(&r));
        assert!(b.push(&r));
        assert!(!b.push(&r));
        assert_eq!(b.records(), 2);
        assert_eq!(b.used(), r.encoded_len() * 2);
    }

    #[test]
    fn complete_resets() {
        let r = rec("k");
        let mut b = ActivityBuffer::new(1024);
        b.push(&r);
        let bytes = b.complete();
        assert_eq!(bytes.len(), r.encoded_len());
        assert_eq!(b.records(), 0);
        assert_eq!(b.used(), 0);
        assert!(b.push(&r));
    }

    #[test]
    fn pool_rotates_buffers() {
        let r = rec("k");
        let cap = r.encoded_len() * 2;
        let mut p = BufferPool::new(cap, 4);
        for _ in 0..5 {
            p.push(&r);
        }
        let bufs = p.drain();
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        assert_eq!(total, 5 * r.encoded_len());
        assert_eq!(p.dropped(), 0);
    }

    #[test]
    fn pool_drops_under_backpressure() {
        let r = rec("k");
        let cap = r.encoded_len(); // 1 record per buffer
        let mut p = BufferPool::new(cap, 2);
        p.push(&r); // fills current
        p.push(&r); // rotates: completed=1 (== num_buffers-1), current holds 1
        p.push(&r); // no buffer available -> dropped
        assert!(p.dropped() > 0);
    }

    #[test]
    fn resident_bytes_is_capacity_times_buffers() {
        let p = BufferPool::new(1024, 3);
        assert_eq!(p.resident_bytes(), 3072);
        let d = BufferPool::default();
        assert_eq!(
            d.resident_bytes(),
            DEFAULT_BUFFER_BYTES * DEFAULT_POOL_BUFFERS
        );
    }

    #[test]
    fn drain_empties_pool() {
        let r = rec("k");
        let mut p = BufferPool::default();
        p.push(&r);
        assert_eq!(p.drain().len(), 1);
        assert!(p.drain().is_empty());
    }
}
