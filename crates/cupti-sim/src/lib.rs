#![warn(missing_docs)]

//! A CUPTI-like asynchronous activity-profiling API over the simulated GPU.
//!
//! The GLP4NN paper's *resource tracker* is "a compact asynchronous resource
//! tracker ... based on NVIDIA CUPTI library ... for collecting runtime
//! configurations of kernels with low memory and time overheads" (§3.1).
//! This crate reproduces the CUPTI activity API surface that tracker needs:
//!
//! - [`activity::ActivityRecord`] — the per-kernel record CUPTI delivers
//!   (name, grid/block dims, registers per thread, static+dynamic shared
//!   memory, stream id and start/end timestamps).
//! - [`buffer`] — records are serialized into fixed-size binary buffers
//!   ([`bytes`]-backed) handed over via a requested/completed double-buffer
//!   protocol, exactly like `cuptiActivityRegisterCallbacks`.
//! - [`subscriber::Profiler`] — enable/disable, ingest kernel traces from a
//!   [`gpu_sim::Device`], flush completed buffers, and parse records back.
//! - [`overhead`] — the memory (`mem_tt`, `mem_K`, `mem_cupti`, Eqs. 10-11)
//!   and profiling-time (`T_p`, Eq. 12) accounting that the paper reports
//!   in Fig. 10 and Table 6.
//!
//! ```
//! use cupti_sim::Profiler;
//! use gpu_sim::{Device, DeviceProps, KernelDesc, LaunchConfig, KernelCost, Dim3};
//!
//! let mut dev = Device::new(DeviceProps::k40c());
//! let mut prof = Profiler::new();
//! prof.enable();
//! let s = dev.create_stream();
//! dev.launch(s, KernelDesc::new(
//!     "im2col",
//!     LaunchConfig::new(Dim3::linear(18), Dim3::linear(256), 33, 0),
//!     KernelCost::new(1.0e5, 4.0e4),
//! ));
//! dev.run();
//! prof.ingest(dev.trace());
//! let records = prof.flush();
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].name, "im2col");
//! assert_eq!(records[0].regs_per_thread, 33);
//! ```

pub mod activity;
pub mod buffer;
pub mod callback;
pub mod overhead;
pub mod subscriber;

pub use activity::{ActivityKind, ActivityRecord, DecodeError};
pub use buffer::{ActivityBuffer, BufferPool, DEFAULT_BUFFER_BYTES, DEFAULT_POOL_BUFFERS};
pub use callback::{ApiCallRecord, CallbackSubscriber};
pub use overhead::ProfilerOverhead;
pub use subscriber::Profiler;
