//! The CUPTI *Callback API* counterpart to the activity API.
//!
//! Real CUPTI exposes two collection mechanisms: the asynchronous
//! *activity* API (buffered records — [`crate::subscriber::Profiler`])
//! and the synchronous *callback* API, which invokes client code inside
//! every instrumented driver call. GLP4NN's compact tracker uses the
//! activity path for timing, but the callback path is how launch
//! *configurations* can be captured at submission time with zero
//! buffering delay. This module provides that path over the simulator's
//! launch hook.

use gpu_sim::{Device, KernelDesc, SimTime, StreamId};
use parking_lot::Mutex;
use std::sync::Arc;

/// One intercepted driver API call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiCallRecord {
    /// Kernel name passed to the launch.
    pub kernel: String,
    /// Correlation tag.
    pub tag: u64,
    /// Target stream.
    pub stream: u32,
    /// Grid block count.
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Host time at which the launch call returned (ns).
    pub host_time_ns: SimTime,
}

/// A callback-API subscriber: cheap, synchronous capture of every kernel
/// launch on a device. Clone the handle to read records while attached.
#[derive(Debug, Clone, Default)]
pub struct CallbackSubscriber {
    records: Arc<Mutex<Vec<ApiCallRecord>>>,
}

impl CallbackSubscriber {
    /// New subscriber with no records.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install this subscriber on `dev` (replaces any previous hook).
    pub fn attach(&self, dev: &mut Device) {
        let records = Arc::clone(&self.records);
        dev.set_launch_hook(Box::new(
            move |desc: &KernelDesc, stream: StreamId, host_time: SimTime| {
                records.lock().push(ApiCallRecord {
                    kernel: desc.name.clone(),
                    tag: desc.tag,
                    stream: stream.raw(),
                    grid_blocks: desc.launch.num_blocks(),
                    threads_per_block: desc.launch.threads_per_block(),
                    host_time_ns: host_time,
                });
            },
        ));
    }

    /// Stop receiving callbacks from `dev`.
    pub fn detach(&self, dev: &mut Device) {
        dev.clear_launch_hook();
    }

    /// Number of launches intercepted so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether nothing has been intercepted.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Take all records collected so far.
    pub fn drain(&self) -> Vec<ApiCallRecord> {
        std::mem::take(&mut *self.records.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceProps, Dim3, KernelCost, LaunchConfig};

    fn kernel(name: &str, tag: u64) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(4), Dim3::linear(128), 16, 0),
            KernelCost::new(1.0e5, 1.0e4),
        )
        .with_tag(tag)
    }

    #[test]
    fn intercepts_launches_synchronously() {
        let mut dev = Device::new(DeviceProps::p100());
        let sub = CallbackSubscriber::new();
        sub.attach(&mut dev);
        let s = dev.create_stream();
        dev.launch(s, kernel("im2col", 1));
        // Record exists *before* any simulation runs — callback, not
        // activity, semantics.
        assert_eq!(sub.len(), 1);
        dev.launch(s, kernel("sgemm", 2));
        dev.run();
        let recs = sub.drain();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kernel, "im2col");
        assert_eq!(recs[0].tag, 1);
        assert_eq!(recs[0].grid_blocks, 4);
        assert_eq!(recs[0].threads_per_block, 128);
        assert_eq!(recs[1].kernel, "sgemm");
        // Host launch times are serialized by T_launch.
        assert!(recs[1].host_time_ns >= recs[0].host_time_ns + dev.props().launch_overhead_ns);
    }

    #[test]
    fn detach_stops_interception() {
        let mut dev = Device::new(DeviceProps::k40c());
        let sub = CallbackSubscriber::new();
        sub.attach(&mut dev);
        let s = dev.create_stream();
        dev.launch(s, kernel("a", 0));
        sub.detach(&mut dev);
        dev.launch(s, kernel("b", 0));
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.drain()[0].kernel, "a");
        assert!(sub.is_empty());
    }

    #[test]
    fn handles_are_shared() {
        let mut dev = Device::new(DeviceProps::p100());
        let sub = CallbackSubscriber::new();
        let reader = sub.clone();
        sub.attach(&mut dev);
        let s = dev.create_stream();
        dev.launch(s, kernel("k", 0));
        assert_eq!(reader.len(), 1, "cloned handle sees the same records");
    }
}
