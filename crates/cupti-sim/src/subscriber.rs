//! The profiler subscriber: enable/disable, ingest, flush.

use crate::activity::ActivityRecord;
use crate::buffer::BufferPool;
use crate::overhead::{self, ProfilerOverhead};
use std::time::Instant;
use telemetry::{MetricsRegistry, RecorderSlot, SharedRecorder};

/// A compact kernel profiler in the style of a CUPTI subscriber.
///
/// Lifecycle: [`enable`](Profiler::enable) → run kernels on a
/// [`gpu_sim::Device`] → [`ingest`](Profiler::ingest) the device trace →
/// [`flush`](Profiler::flush) parsed records. While disabled, `ingest` is a
/// no-op, so steady-state training (after GLP4NN's one-time profiling
/// phase) pays zero overhead.
///
/// Overhead accounting (Eqs. 10-12) lives in a private
/// [`telemetry::MetricsRegistry`]; an optionally attached shared recorder
/// additionally receives per-batch ingest instants (stamped with the
/// simulated completion time of the last kernel in the batch, never wall
/// clock) and record counters.
#[derive(Debug)]
pub struct Profiler {
    enabled: bool,
    pool: BufferPool,
    metrics: MetricsRegistry,
    telemetry: RecorderSlot,
    telemetry_pid: u32,
    /// Trace entries already consumed (so repeated `ingest` of a growing
    /// device trace only processes new kernels).
    consumed: usize,
}

impl Profiler {
    /// A profiler with the default buffer pool.
    pub fn new() -> Self {
        Self::from_pool(BufferPool::default())
    }

    /// A profiler with a custom buffer pool (size × count).
    pub fn with_pool(buffer_bytes: usize, num_buffers: usize) -> Self {
        Self::from_pool(BufferPool::new(buffer_bytes, num_buffers))
    }

    fn from_pool(pool: BufferPool) -> Self {
        let mut metrics = MetricsRegistry::new();
        overhead::init_registry(&mut metrics, pool.resident_bytes());
        Profiler {
            enabled: false,
            pool,
            metrics,
            telemetry: RecorderSlot::empty(),
            telemetry_pid: 0,
            consumed: 0,
        }
    }

    /// Mirror ingest activity into a shared recorder, attributed to
    /// device `pid`.
    pub fn set_telemetry(&mut self, rec: SharedRecorder, pid: u32) {
        self.telemetry.attach(rec);
        self.telemetry_pid = pid;
    }

    /// Detach the shared recorder.
    pub fn clear_telemetry(&mut self) {
        self.telemetry.clear();
    }

    /// Start recording kernel activity.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stop recording.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether the profiler is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Consume new entries of a device trace (asynchronous delivery: the
    /// simulator finished the kernels; the profiler serializes them into
    /// activity buffers on the host). Returns the number of kernels
    /// recorded. Real wall time spent here accrues to `T_p`.
    pub fn ingest(&mut self, trace: &[gpu_sim::KernelTrace]) -> usize {
        let new = &trace[self.consumed.min(trace.len())..];
        self.consumed = trace.len();
        if !self.enabled || new.is_empty() {
            return 0;
        }
        let t0 = Instant::now();
        let mut n = 0;
        let mut batch_end_ns = 0u64;
        for t in new {
            let rec = ActivityRecord::from_trace(t);
            overhead::account_record(&mut self.metrics, &rec);
            self.pool.push(&rec);
            batch_end_ns = batch_end_ns.max(rec.end_ns);
            n += 1;
        }
        overhead::add_profiling_time(&mut self.metrics, t0.elapsed());
        let pid = self.telemetry_pid;
        self.telemetry.with(|r| {
            r.counter_add("cupti.records", n as u64);
            r.instant(
                pid,
                telemetry::HOST_TID,
                &format!("cupti.ingest x{n}"),
                "cupti",
                batch_end_ns,
            );
        });
        n
    }

    /// Drain completed buffers and parse them back into records. Parse
    /// time also accrues to `T_p` (it is the kernel-parser half of the
    /// resource tracker).
    pub fn flush(&mut self) -> Vec<ActivityRecord> {
        let t0 = Instant::now();
        let mut out = Vec::new();
        for mut buf in self.pool.drain() {
            // Clean exhaustion or a malformed tail: either way the rest of
            // this buffer is unreadable, so stop at the first decode error.
            while let Ok(rec) = ActivityRecord::decode(&mut buf) {
                out.push(rec);
            }
        }
        overhead::add_profiling_time(&mut self.metrics, t0.elapsed());
        self.telemetry.with(|r| {
            r.counter_add("cupti.flushed_records", out.len() as u64);
        });
        out
    }

    /// Records dropped by buffer back-pressure.
    pub fn dropped(&self) -> usize {
        self.pool.dropped()
    }

    /// Memory/time overhead accounting, snapshotted from the profiler's
    /// metrics registry.
    pub fn overhead(&self) -> ProfilerOverhead {
        ProfilerOverhead::from_metrics(&self.metrics)
    }

    /// The raw metrics registry backing the overhead accounting.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};

    fn run_kernels(n: u32) -> Device {
        let mut dev = Device::new(DeviceProps::p100());
        let s = dev.create_stream();
        for i in 0..n {
            dev.launch(
                s,
                KernelDesc::new(
                    &format!("k{i}"),
                    LaunchConfig::new(Dim3::linear(4), Dim3::linear(128), 24, 256),
                    KernelCost::new(1.0e5, 1.0e4),
                )
                .with_tag(i as u64),
            );
        }
        dev.run();
        dev
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let dev = run_kernels(3);
        let mut p = Profiler::new();
        assert_eq!(p.ingest(dev.trace()), 0);
        assert!(p.flush().is_empty());
    }

    #[test]
    fn records_roundtrip_through_buffers() {
        let dev = run_kernels(5);
        let mut p = Profiler::new();
        p.enable();
        assert_eq!(p.ingest(dev.trace()), 5);
        let recs = p.flush();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].name, "k0");
        assert_eq!(recs[4].tag, 4);
        assert_eq!(recs[0].block.0, 128);
        assert_eq!(recs[0].regs_per_thread, 24);
        assert!(recs[0].end_ns > recs[0].start_ns);
    }

    #[test]
    fn incremental_ingest_skips_consumed() {
        let mut dev = run_kernels(2);
        let mut p = Profiler::new();
        p.enable();
        assert_eq!(p.ingest(dev.trace()), 2);
        // More kernels on the same device.
        let s = dev.create_stream();
        dev.launch(
            s,
            KernelDesc::new(
                "late",
                LaunchConfig::new(Dim3::linear(2), Dim3::linear(64), 16, 0),
                KernelCost::new(1.0e4, 0.0),
            ),
        );
        dev.run();
        assert_eq!(p.ingest(dev.trace()), 1);
        assert_eq!(p.flush().len(), 3);
    }

    #[test]
    fn overhead_accounts_memory_per_kernel() {
        let dev = run_kernels(4);
        let mut p = Profiler::new();
        p.enable();
        p.ingest(dev.trace());
        let o = p.overhead();
        assert_eq!(o.mem_tt_bytes, 4 * 16);
        assert!(o.mem_k_bytes > 0);
        assert!(o.mem_cupti_bytes >= crate::buffer::DEFAULT_BUFFER_BYTES);
        // Fig. 10's qualitative claim: CUPTI runtime memory dominates.
        assert!(o.mem_cupti_bytes > o.mem_tt_bytes + o.mem_k_bytes);
    }

    #[test]
    fn profiling_time_accrues() {
        let dev = run_kernels(50);
        let mut p = Profiler::new();
        p.enable();
        p.ingest(dev.trace());
        p.flush();
        assert!(p.overhead().t_p.as_nanos() > 0);
    }
}
