//! Activity record types and their binary wire format.
//!
//! Records are fixed-layout little-endian structures plus a length-prefixed
//! kernel name, mirroring CUPTI's `CUpti_ActivityKernel` records. The binary
//! round-trip is what makes the buffer pool's memory accounting honest.

use bytes::{Buf, BufMut};

/// Kind of activity record (subset of CUPTI's activity kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivityKind {
    /// A kernel execution (`CUPTI_ACTIVITY_KIND_KERNEL`).
    Kernel,
    /// A concurrent kernel execution record
    /// (`CUPTI_ACTIVITY_KIND_CONCURRENT_KERNEL`).
    ConcurrentKernel,
}

impl ActivityKind {
    fn to_u8(self) -> u8 {
        match self {
            ActivityKind::Kernel => 1,
            ActivityKind::ConcurrentKernel => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ActivityKind::Kernel),
            2 => Some(ActivityKind::ConcurrentKernel),
            _ => None,
        }
    }
}

/// Why decoding an activity record from a buffer failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the record did. `available == 0` is the
    /// ordinary end-of-buffer condition a drain loop stops on; anything
    /// else is a truncated record.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The kind byte matches no known activity kind.
    BadKind(u8),
    /// The kernel-name bytes are not valid UTF-8.
    BadName,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => write!(
                f,
                "truncated activity record: needed {needed} bytes, {available} available"
            ),
            DecodeError::BadKind(k) => write!(f, "unknown activity kind code {k}"),
            DecodeError::BadName => write!(f, "kernel name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// One kernel activity record, as the resource tracker consumes it.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityRecord {
    /// Record kind.
    pub kind: ActivityKind,
    /// Kernel name.
    pub name: String,
    /// Correlation tag carried from the launch site (layer id etc.).
    pub tag: u64,
    /// Stream the kernel executed in.
    pub stream: u32,
    /// Grid dimensions.
    pub grid: (u32, u32, u32),
    /// Block dimensions.
    pub block: (u32, u32, u32),
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per block (bytes).
    pub smem_static: u32,
    /// Dynamic shared memory per block (bytes).
    pub smem_dynamic: u32,
    /// Execution start timestamp (ns).
    pub start_ns: u64,
    /// Execution end timestamp (ns).
    pub end_ns: u64,
}

impl ActivityRecord {
    /// Fixed-field portion of the encoded record, in bytes (everything but
    /// the name bytes). This is the paper's `mem_K` unit: the per-kernel
    /// configuration footprint.
    pub const FIXED_ENCODED_BYTES: usize = 1 + 8 + 4 + 6 * 4 + 3 * 4 + 8 + 8 + 2;

    /// Bytes of this record devoted to timestamps (`mem_tt` unit).
    pub const TIMESTAMP_BYTES: usize = 16;

    /// Total encoded size of this record.
    pub fn encoded_len(&self) -> usize {
        Self::FIXED_ENCODED_BYTES + self.name.len()
    }

    /// Kernel duration in ns.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Serialize into `buf` (little-endian, name length-prefixed u16).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.kind.to_u8());
        buf.put_u64_le(self.tag);
        buf.put_u32_le(self.stream);
        buf.put_u32_le(self.grid.0);
        buf.put_u32_le(self.grid.1);
        buf.put_u32_le(self.grid.2);
        buf.put_u32_le(self.block.0);
        buf.put_u32_le(self.block.1);
        buf.put_u32_le(self.block.2);
        buf.put_u32_le(self.regs_per_thread);
        buf.put_u32_le(self.smem_static);
        buf.put_u32_le(self.smem_dynamic);
        buf.put_u64_le(self.start_ns);
        buf.put_u64_le(self.end_ns);
        buf.put_u16_le(self.name.len() as u16);
        buf.put_slice(self.name.as_bytes());
    }

    /// Deserialize one record from `buf`, reporting exactly how malformed
    /// input is malformed.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < Self::FIXED_ENCODED_BYTES {
            return Err(DecodeError::Truncated {
                needed: Self::FIXED_ENCODED_BYTES,
                available: buf.remaining(),
            });
        }
        let kind_code = buf.get_u8();
        let kind = ActivityKind::from_u8(kind_code).ok_or(DecodeError::BadKind(kind_code))?;
        let tag = buf.get_u64_le();
        let stream = buf.get_u32_le();
        let grid = (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le());
        let block = (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le());
        let regs_per_thread = buf.get_u32_le();
        let smem_static = buf.get_u32_le();
        let smem_dynamic = buf.get_u32_le();
        let start_ns = buf.get_u64_le();
        let end_ns = buf.get_u64_le();
        let name_len = buf.get_u16_le() as usize;
        if buf.remaining() < name_len {
            return Err(DecodeError::Truncated {
                needed: name_len,
                available: buf.remaining(),
            });
        }
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| DecodeError::BadName)?;
        Ok(ActivityRecord {
            kind,
            name,
            tag,
            stream,
            grid,
            block,
            regs_per_thread,
            smem_static,
            smem_dynamic,
            start_ns,
            end_ns,
        })
    }

    /// Build a record from a simulator kernel trace.
    pub fn from_trace(t: &gpu_sim::KernelTrace) -> Self {
        ActivityRecord {
            kind: if t.stream.is_default() {
                ActivityKind::Kernel
            } else {
                ActivityKind::ConcurrentKernel
            },
            name: t.name.clone(),
            tag: t.tag,
            stream: t.stream.raw(),
            grid: (t.launch.grid.x, t.launch.grid.y, t.launch.grid.z),
            block: (t.launch.block.x, t.launch.block.y, t.launch.block.z),
            regs_per_thread: t.launch.regs_per_thread,
            smem_static: t.launch.smem_static,
            smem_dynamic: t.launch.smem_dynamic,
            start_ns: t.start_ns,
            end_ns: t.end_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample() -> ActivityRecord {
        ActivityRecord {
            kind: ActivityKind::ConcurrentKernel,
            name: "sgemm_128x64".to_string(),
            tag: 42,
            stream: 3,
            grid: (18, 1, 1),
            block: (256, 1, 1),
            regs_per_thread: 33,
            smem_static: 4096,
            smem_dynamic: 512,
            start_ns: 1_000,
            end_ns: 51_000,
        }
    }

    #[test]
    fn roundtrip() {
        let r = sample();
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), r.encoded_len());
        let mut cur = buf.freeze();
        let back = ActivityRecord::decode(&mut cur).unwrap();
        assert_eq!(back, r);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn multiple_records_in_sequence() {
        let mut buf = BytesMut::new();
        let a = sample();
        let mut b = sample();
        b.name = "im2col".to_string();
        b.tag = 7;
        a.encode(&mut buf);
        b.encode(&mut buf);
        let mut cur = buf.freeze();
        assert_eq!(ActivityRecord::decode(&mut cur).unwrap(), a);
        assert_eq!(ActivityRecord::decode(&mut cur).unwrap(), b);
        // Clean exhaustion reads as a truncation with nothing available.
        assert_eq!(
            ActivityRecord::decode(&mut cur),
            Err(DecodeError::Truncated {
                needed: ActivityRecord::FIXED_ENCODED_BYTES,
                available: 0
            })
        );
    }

    #[test]
    fn decode_rejects_truncation() {
        let r = sample();
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        let truncated = buf.freeze().slice(0..10);
        let mut cur = truncated;
        let err = ActivityRecord::decode(&mut cur).unwrap_err();
        assert_eq!(
            err,
            DecodeError::Truncated {
                needed: ActivityRecord::FIXED_ENCODED_BYTES,
                available: 10
            }
        );
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn decode_rejects_bad_kind_and_name() {
        let r = sample();
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        let mut bytes = buf.freeze().as_slice().to_vec();
        bytes[0] = 99; // corrupt the kind byte
        let mut cur = bytes::Bytes::from(bytes);
        assert_eq!(
            ActivityRecord::decode(&mut cur),
            Err(DecodeError::BadKind(99))
        );

        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        let mut bytes = buf.freeze().as_slice().to_vec();
        let name_at = bytes.len() - r.name.len();
        bytes[name_at] = 0xFF; // invalid UTF-8 lead byte
        let mut cur = bytes::Bytes::from(bytes);
        let err = ActivityRecord::decode(&mut cur).unwrap_err();
        assert_eq!(err, DecodeError::BadName);
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn duration_and_sizes() {
        let r = sample();
        assert_eq!(r.duration_ns(), 50_000);
        assert_eq!(ActivityRecord::TIMESTAMP_BYTES, 16);
        assert!(r.encoded_len() > ActivityRecord::FIXED_ENCODED_BYTES);
    }

    #[test]
    fn kind_codes() {
        assert_eq!(ActivityKind::from_u8(1), Some(ActivityKind::Kernel));
        assert_eq!(
            ActivityKind::from_u8(2),
            Some(ActivityKind::ConcurrentKernel)
        );
        assert_eq!(ActivityKind::from_u8(99), None);
    }
}
