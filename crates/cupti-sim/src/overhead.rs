//! Space/time overhead accounting (Eqs. 10-12 of the paper).
//!
//! `mem_total = mem_tt + mem_K + mem_cupti`: timestamp memory and
//! configuration memory scale with the number of kernels recorded
//! (Eq. 11), while `mem_cupti` is the resident buffer-pool footprint fixed
//! by the CUPTI runtime. All three live in **host** memory — they never
//! compete with training data on the device — and are released once kernel
//! analysis finishes.
//!
//! The accounting itself is kept in a [`telemetry::MetricsRegistry`]
//! owned by the [`Profiler`](crate::Profiler) (counters named by
//! [`metric`]); [`ProfilerOverhead`] is the typed snapshot view read back
//! out of that registry for cost reports.

use crate::activity::ActivityRecord;
use std::time::Duration;
use telemetry::MetricsRegistry;

/// Counter names the profiler accounts under in its metrics registry.
pub mod metric {
    /// Bytes devoted to kernel timestamps (`mem_tt`, Eq. 11).
    pub const MEM_TT_BYTES: &str = "cupti.mem_tt_bytes";
    /// Bytes devoted to kernel execution configurations (`mem_K`, Eq. 11).
    pub const MEM_K_BYTES: &str = "cupti.mem_k_bytes";
    /// Resident bytes pinned by the buffer pool (`mem_cupti`).
    pub const MEM_CUPTI_BYTES: &str = "cupti.mem_cupti_bytes";
    /// Kernels recorded.
    pub const KERNELS_RECORDED: &str = "cupti.kernels_recorded";
    /// Accumulated real profiling time (`T_p`), in nanoseconds.
    pub const T_P_NANOS: &str = "cupti.t_p_ns";
}

/// Seed a fresh registry with the fixed pool-resident footprint.
pub fn init_registry(m: &mut MetricsRegistry, pool_resident_bytes: usize) {
    m.counter_add(metric::MEM_CUPTI_BYTES, pool_resident_bytes as u64);
}

/// Account one recorded kernel (Eq. 11 terms) into the registry.
pub fn account_record(m: &mut MetricsRegistry, rec: &ActivityRecord) {
    m.counter_add(metric::MEM_TT_BYTES, ActivityRecord::TIMESTAMP_BYTES as u64);
    m.counter_add(
        metric::MEM_K_BYTES,
        (rec.encoded_len() - ActivityRecord::TIMESTAMP_BYTES) as u64,
    );
    m.counter_add(metric::KERNELS_RECORDED, 1);
}

/// Accrue real profiling time (`T_p`) into the registry.
pub fn add_profiling_time(m: &mut MetricsRegistry, d: Duration) {
    m.counter_add(metric::T_P_NANOS, d.as_nanos() as u64);
}

/// Memory and time overhead of the profiler, per the paper's cost model —
/// a snapshot view over the profiler's metrics registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilerOverhead {
    /// Bytes devoted to kernel timestamps (`mem_tt`).
    pub mem_tt_bytes: usize,
    /// Bytes devoted to kernel execution configurations (`mem_K`).
    pub mem_k_bytes: usize,
    /// Resident bytes pinned by the buffer pool (`mem_cupti`).
    pub mem_cupti_bytes: usize,
    /// Kernels recorded.
    pub kernels_recorded: usize,
    /// Accumulated real profiling time (`T_p`).
    pub t_p: Duration,
}

impl ProfilerOverhead {
    /// Snapshot the overhead counters out of a profiler's registry.
    pub fn from_metrics(m: &MetricsRegistry) -> Self {
        ProfilerOverhead {
            mem_tt_bytes: m.counter(metric::MEM_TT_BYTES) as usize,
            mem_k_bytes: m.counter(metric::MEM_K_BYTES) as usize,
            mem_cupti_bytes: m.counter(metric::MEM_CUPTI_BYTES) as usize,
            kernels_recorded: m.counter(metric::KERNELS_RECORDED) as usize,
            t_p: Duration::from_nanos(m.counter(metric::T_P_NANOS)),
        }
    }

    /// `mem_total` (Eq. 10).
    pub fn mem_total_bytes(&self) -> usize {
        self.mem_tt_bytes + self.mem_k_bytes + self.mem_cupti_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityKind;

    fn rec(name: &str) -> ActivityRecord {
        ActivityRecord {
            kind: ActivityKind::Kernel,
            name: name.to_string(),
            tag: 0,
            stream: 0,
            grid: (1, 1, 1),
            block: (64, 1, 1),
            regs_per_thread: 8,
            smem_static: 0,
            smem_dynamic: 0,
            start_ns: 0,
            end_ns: 100,
        }
    }

    #[test]
    fn eq10_total_is_sum_of_parts() {
        let mut m = MetricsRegistry::new();
        init_registry(&mut m, 1024);
        account_record(&mut m, &rec("abc"));
        account_record(&mut m, &rec("defgh"));
        let o = ProfilerOverhead::from_metrics(&m);
        assert_eq!(
            o.mem_total_bytes(),
            o.mem_tt_bytes + o.mem_k_bytes + o.mem_cupti_bytes
        );
        assert_eq!(o.mem_cupti_bytes, 1024);
        assert_eq!(o.kernels_recorded, 2);
    }

    #[test]
    fn eq11_scales_with_kernel_count() {
        let mut m = MetricsRegistry::new();
        for _ in 0..10 {
            account_record(&mut m, &rec("k"));
        }
        let o = ProfilerOverhead::from_metrics(&m);
        assert_eq!(o.mem_tt_bytes, 160);
        let per_k = ActivityRecord { ..rec("k") }.encoded_len() - ActivityRecord::TIMESTAMP_BYTES;
        assert_eq!(o.mem_k_bytes, 10 * per_k);
    }

    #[test]
    fn time_accumulates() {
        let mut m = MetricsRegistry::new();
        add_profiling_time(&mut m, Duration::from_micros(5));
        add_profiling_time(&mut m, Duration::from_micros(7));
        let o = ProfilerOverhead::from_metrics(&m);
        assert_eq!(o.t_p, Duration::from_micros(12));
    }
}
