//! Space/time overhead accounting (Eqs. 10-12 of the paper).
//!
//! `mem_total = mem_tt + mem_K + mem_cupti`: timestamp memory and
//! configuration memory scale with the number of kernels recorded
//! (Eq. 11), while `mem_cupti` is the resident buffer-pool footprint fixed
//! by the CUPTI runtime. All three live in **host** memory — they never
//! compete with training data on the device — and are released once kernel
//! analysis finishes.

use crate::activity::ActivityRecord;
use std::time::Duration;

/// Memory and time overhead of the profiler, per the paper's cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilerOverhead {
    /// Bytes devoted to kernel timestamps (`mem_tt`).
    pub mem_tt_bytes: usize,
    /// Bytes devoted to kernel execution configurations (`mem_K`).
    pub mem_k_bytes: usize,
    /// Resident bytes pinned by the buffer pool (`mem_cupti`).
    pub mem_cupti_bytes: usize,
    /// Kernels recorded.
    pub kernels_recorded: usize,
    /// Accumulated real profiling time (`T_p`).
    pub t_p: Duration,
}

impl ProfilerOverhead {
    /// Fresh accounting for a pool of `pool_resident_bytes`.
    pub fn new(pool_resident_bytes: usize) -> Self {
        ProfilerOverhead {
            mem_tt_bytes: 0,
            mem_k_bytes: 0,
            mem_cupti_bytes: pool_resident_bytes,
            kernels_recorded: 0,
            t_p: Duration::ZERO,
        }
    }

    /// Account one recorded kernel (Eq. 11 terms).
    pub fn account_record(&mut self, rec: &ActivityRecord) {
        self.mem_tt_bytes += ActivityRecord::TIMESTAMP_BYTES;
        self.mem_k_bytes += rec.encoded_len() - ActivityRecord::TIMESTAMP_BYTES;
        self.kernels_recorded += 1;
    }

    /// Accrue real profiling time (`T_p`).
    pub fn add_profiling_time(&mut self, d: Duration) {
        self.t_p += d;
    }

    /// `mem_total` (Eq. 10).
    pub fn mem_total_bytes(&self) -> usize {
        self.mem_tt_bytes + self.mem_k_bytes + self.mem_cupti_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityKind;

    fn rec(name: &str) -> ActivityRecord {
        ActivityRecord {
            kind: ActivityKind::Kernel,
            name: name.to_string(),
            tag: 0,
            stream: 0,
            grid: (1, 1, 1),
            block: (64, 1, 1),
            regs_per_thread: 8,
            smem_static: 0,
            smem_dynamic: 0,
            start_ns: 0,
            end_ns: 100,
        }
    }

    #[test]
    fn eq10_total_is_sum_of_parts() {
        let mut o = ProfilerOverhead::new(1024);
        o.account_record(&rec("abc"));
        o.account_record(&rec("defgh"));
        assert_eq!(
            o.mem_total_bytes(),
            o.mem_tt_bytes + o.mem_k_bytes + o.mem_cupti_bytes
        );
        assert_eq!(o.kernels_recorded, 2);
    }

    #[test]
    fn eq11_scales_with_kernel_count() {
        let mut o = ProfilerOverhead::new(0);
        for _ in 0..10 {
            o.account_record(&rec("k"));
        }
        assert_eq!(o.mem_tt_bytes, 160);
        let per_k = ActivityRecord { ..rec("k") }.encoded_len() - ActivityRecord::TIMESTAMP_BYTES;
        assert_eq!(o.mem_k_bytes, 10 * per_k);
    }

    #[test]
    fn time_accumulates() {
        let mut o = ProfilerOverhead::new(0);
        o.add_profiling_time(Duration::from_micros(5));
        o.add_profiling_time(Duration::from_micros(7));
        assert_eq!(o.t_p, Duration::from_micros(12));
    }
}
