//! Property tests for the collective layer: the fixed reduction tree
//! tracks a high-precision reference, and the simulated ring schedule's
//! *shape* (copies, traffic, fold count, results) is invariant to link
//! timing — jitter moves the clock, never the schedule.

use collective::{tree_sum, Bucket, RingComm};
use gpu_sim::{Device, DeviceProps, Fabric, LinkProps};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `tree_sum` agrees with an f64 reference sum to within the usual
    /// f32 accumulation tolerance, for any part count and length.
    #[test]
    fn tree_sum_tracks_reference(
        parts in prop::collection::vec(
            prop::collection::vec(-10.0f32..10.0, 1..40), 1..12),
        len_seed in 0usize..40,
    ) {
        // Force every part to one common length.
        let len = 1 + len_seed % parts[0].len();
        let parts: Vec<Vec<f32>> = parts.iter().map(|p| {
            p.iter().cycle().take(len).copied().collect()
        }).collect();
        let views: Vec<&[f32]> = parts.iter().map(|p| p.as_slice()).collect();
        let got = tree_sum(&views);
        for i in 0..len {
            let reference: f64 = parts.iter().map(|p| p[i] as f64).sum();
            prop_assert!(
                (got[i] as f64 - reference).abs() <= 1e-4 * (1.0 + reference.abs()),
                "element {i}: {} vs reference {reference}", got[i]
            );
        }
    }

    /// The tree is deterministic: summing the same parts twice is bitwise
    /// identical, regardless of how the slices were produced.
    #[test]
    fn tree_sum_is_deterministic(
        parts in prop::collection::vec(
            prop::collection::vec(-1.0f32..1.0, 8), 2..16),
    ) {
        let views: Vec<&[f32]> = parts.iter().map(|p| p.as_slice()).collect();
        let a = tree_sum(&views);
        let b = tree_sum(&views);
        prop_assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    /// Link jitter (and the jitter seed) never changes the all-reduce
    /// schedule: same copies, same wire traffic, same fold-kernel count —
    /// only the simulated clock moves. And for a fixed seed the whole
    /// schedule, completion times included, is reproducible.
    #[test]
    fn ring_schedule_is_jitter_invariant(
        replicas in 2usize..=8,
        kb in 1u64..512,
        jitter_ns in 1u64..5_000,
        seed in 0u64..u64::MAX,
    ) {
        let bytes = kb * 1024;
        let run = |jitter: u64, seed: u64| {
            let mut devices: Vec<Device> = (0..replicas)
                .map(|_| Device::new(DeviceProps::p100()))
                .collect();
            let mut fabric =
                Fabric::ring(replicas, LinkProps::pcie3().with_jitter(jitter));
            fabric.set_jitter_seed(seed);
            let mut devs: Vec<&mut Device> = devices.iter_mut().collect();
            let mut comm = RingComm::new(&mut devs);
            let rep = comm
                .all_reduce(&mut fabric, &mut devs, &Bucket::new("g", bytes))
                .unwrap();
            fabric.run(&mut devs);
            let spans: Vec<_> = rep.copies.iter()
                .map(|&id| fabric.copy_span(id).expect("all copies must complete"))
                .collect();
            (rep.copies.len(), rep.bytes_on_wire, rep.reduce_kernels, spans)
        };
        let calm = run(0, seed);
        let noisy = run(jitter_ns, seed);
        let replayed = run(jitter_ns, seed);
        // Schedule shape is identical with and without jitter...
        prop_assert_eq!(calm.0, noisy.0, "copy count changed under jitter");
        prop_assert_eq!(calm.1, noisy.1, "wire traffic changed under jitter");
        prop_assert_eq!(calm.2, noisy.2, "fold count changed under jitter");
        // ...the ring bound holds...
        prop_assert_eq!(calm.0, 2 * replicas * (replicas - 1));
        prop_assert_eq!(calm.2 as usize, replicas * (replicas - 1));
        // ...and a fixed seed reproduces the exact timing.
        prop_assert_eq!(noisy.3, replayed.3, "same seed must replay identically");
    }
}
