//! Fixed-order reduction math.
//!
//! Floating-point addition is not associative, so "sum the gradients of
//! all shards" has as many answers as there are summation orders. A ring
//! all-reduce over R replicas naturally produces an R-dependent order —
//! which would make training results depend on the replica count and break
//! the convergence-invariance contract.
//!
//! The fix is the standard one (deterministic reduction trees): pick a
//! canonical order *per shard set*, not per replica set. The global batch
//! is split into a fixed number of shards `S` (independent of R); each
//! shard's gradient is computed separately; the shards are combined by a
//! **fixed binary tree** over shard indices. However the shards are
//! distributed over replicas, the tree — and therefore every intermediate
//! rounding — is identical.

/// Sum `parts` element-wise in a fixed binary-tree order over part
/// indices.
///
/// The tree splits `[0, n)` at the largest power of two strictly below
/// `n` (for `n` a power of two: exactly in half), recursing on both
/// halves. The association depends only on `n`, never on how the parts
/// were produced or grouped, so the result is bitwise reproducible.
///
/// All parts must have equal length. Panics on an empty slice.
pub fn tree_sum(parts: &[&[f32]]) -> Vec<f32> {
    assert!(!parts.is_empty(), "tree_sum of zero parts");
    let len = parts[0].len();
    for p in parts {
        assert_eq!(p.len(), len, "tree_sum parts must have equal length");
    }
    tree(parts)
}

/// [`tree_sum`] followed by an element-wise multiply by `scale` — the
/// mean-gradient form (`scale = 1/S`). The scale is applied once, after
/// the full tree, so it cannot perturb the reduction order.
pub fn tree_sum_scaled(parts: &[&[f32]], scale: f32) -> Vec<f32> {
    let mut out = tree_sum(parts);
    for v in &mut out {
        *v *= scale;
    }
    out
}

fn tree(parts: &[&[f32]]) -> Vec<f32> {
    match parts.len() {
        1 => parts[0].to_vec(),
        2 => {
            let mut out = parts[0].to_vec();
            add_assign(&mut out, parts[1]);
            out
        }
        n => {
            // Largest power of two strictly below n: both halves non-empty,
            // and for n a power of two the split is exactly in half.
            let split = (n - 1).next_power_of_two() / 2;
            let mut left = tree(&parts[..split]);
            let right = tree(&parts[split..]);
            add_assign(&mut left, &right);
            left
        }
    }
}

fn add_assign(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random but deterministic part values with enough spread in
    /// magnitude that reassociation visibly changes the rounding.
    fn parts(n: usize, len: usize) -> Vec<Vec<f32>> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                (0..len)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let u = (state >> 40) as f32 / (1u64 << 24) as f32;
                        (u - 0.5) * 10f32.powi((state % 7) as i32 - 3)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn independent_of_part_grouping() {
        // The trainer's invariance hinges on this: summing all S shards in
        // one flat tree gives the same bits no matter how the shards were
        // computed (1 replica with 8 shards, 4 replicas with 2 each, ...).
        let p = parts(8, 64);
        let views: Vec<&[f32]> = p.iter().map(Vec::as_slice).collect();
        let a = tree_sum(&views);
        let b = tree_sum(&views);
        assert_eq!(a, b);
    }

    #[test]
    fn matches_pairwise_tree_by_hand() {
        let p = parts(4, 16);
        let v: Vec<&[f32]> = p.iter().map(Vec::as_slice).collect();
        let got = tree_sum(&v);
        for i in 0..16 {
            let want = (p[0][i] + p[1][i]) + (p[2][i] + p[3][i]);
            assert_eq!(got[i].to_bits(), want.to_bits(), "element {i}");
        }
    }

    #[test]
    fn differs_from_sequential_order() {
        // Sanity that the test data is sharp enough to detect order: a
        // left-to-right fold disagrees with the tree in at least one bit.
        let p = parts(8, 256);
        let v: Vec<&[f32]> = p.iter().map(Vec::as_slice).collect();
        let tree = tree_sum(&v);
        let mut seq = p[0].clone();
        for part in &p[1..] {
            for (d, s) in seq.iter_mut().zip(part) {
                *d += *s;
            }
        }
        assert!(
            tree.iter()
                .zip(&seq)
                .any(|(a, b)| a.to_bits() != b.to_bits()),
            "expected at least one reassociation difference"
        );
    }

    #[test]
    fn non_power_of_two_part_counts_work() {
        for n in [1, 3, 5, 6, 7] {
            let p = parts(n, 8);
            let v: Vec<&[f32]> = p.iter().map(Vec::as_slice).collect();
            assert_eq!(tree_sum(&v).len(), 8, "n={n}");
        }
    }

    #[test]
    fn scale_is_applied_after_the_tree() {
        let p = parts(8, 32);
        let v: Vec<&[f32]> = p.iter().map(Vec::as_slice).collect();
        let summed = tree_sum(&v);
        let scaled = tree_sum_scaled(&v, 0.125);
        for (s, t) in scaled.iter().zip(&summed) {
            assert_eq!(s.to_bits(), (t * 0.125).to_bits());
        }
    }
}
