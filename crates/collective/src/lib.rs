#![warn(missing_docs)]

//! Collective communication for the simulated multi-GPU fabric.
//!
//! The GLP4NN paper closes with the intent to "provide a distributed
//! implementation of the proposed framework" (§6). This crate supplies the
//! communication layer for that: the classic ring collectives — all-reduce,
//! reduce-scatter, all-gather, broadcast — expressed as schedules of
//! peer-to-peer copies ([`gpu_sim::Fabric`]) and local reduction kernels on
//! per-device communication streams.
//!
//! Two layers, with a deliberate division of labour:
//!
//! - [`ring`] builds the **timing** schedule. Copies contend for link
//!   bandwidth, reductions occupy SMs, and everything is ordinary stream
//!   traffic — visible to timelines, [`gpu_sim::DeviceStats`] and the
//!   stream-schedule sanitizer.
//! - [`reduce`] is the **math**: gradients are combined host-side in a
//!   fixed binary-tree order over a fixed shard count, so the reduced
//!   values are *bitwise identical for any replica count* — the paper's
//!   convergence-invariance property carried over to data parallelism.
//!   Simulated ring reductions never reassociate the actual floats.

pub mod reduce;
pub mod ring;

pub use reduce::{tree_sum, tree_sum_scaled};
pub use ring::{Bucket, CommReport, RingComm};
