//! Ring collective schedules over a [`Fabric`].
//!
//! All collectives here are *timing* schedules: they enqueue peer-to-peer
//! copies and local reduction kernels onto per-device communication
//! streams and return; the caller drives them with [`Fabric::run`]
//! (possibly interleaved with compute — overlap is just "enqueue the
//! collective while the compute streams are still busy").
//!
//! The schedules follow the bandwidth-optimal ring algorithm: a bucket of
//! `B` bytes on `R` devices is cut into `R` segments; reduce-scatter runs
//! `R-1` steps in which every device forwards one segment to its ring
//! successor and folds the segment it receives into its local accumulator;
//! all-gather runs `R-1` more steps circulating the finished segments.
//! Every device therefore sends `2B(R-1)/R` bytes — the classic ring
//! bound.
//!
//! Incoming segments land in **per-step staging buffers** (a fresh label
//! per step). Real implementations double-buffer with flags; giving each
//! step its own staging area models the same thing and keeps the schedule
//! free of write-after-read hazards on the staging area, which the
//! stream-schedule sanitizer would otherwise rightly flag.
//!
//! Numerical values never ride these copies (the simulator moves no data);
//! the canonical math is the host-side fixed tree in [`crate::reduce`].

use gpu_sim::{
    BufferId, ByteRange, CopyId, Device, Dim3, Fabric, FabricError, KernelCost, KernelDesc,
    LaunchConfig, MemAccess, StreamId,
};

/// One gradient bucket to be reduced: a buffer label (the same label on
/// every device — device address spaces are separate) and its size.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// Buffer label, resolved per device via [`BufferId::from_label`].
    pub label: String,
    /// Bucket size in bytes (padded internally to 4-byte alignment).
    pub bytes: u64,
}

impl Bucket {
    /// A bucket named `label` of `bytes` bytes.
    pub fn new(label: impl Into<String>, bytes: u64) -> Self {
        Bucket {
            label: label.into(),
            bytes,
        }
    }
}

/// What a collective enqueued — copy handles for span queries plus the
/// aggregate traffic, for reports and tests.
#[derive(Debug, Clone, Default)]
pub struct CommReport {
    /// Every copy enqueued, in schedule order.
    pub copies: Vec<CopyId>,
    /// Total bytes crossing links.
    pub bytes_on_wire: u64,
    /// Local reduction kernels launched.
    pub reduce_kernels: u64,
}

impl CommReport {
    fn absorb(&mut self, other: CommReport) {
        self.copies.extend(other.copies);
        self.bytes_on_wire += other.bytes_on_wire;
        self.reduce_kernels += other.reduce_kernels;
    }

    /// Wall-clock span of the enqueued copies, if `fabric.run` resolved
    /// them: `(earliest start, latest end)`.
    pub fn span(&self, fabric: &Fabric) -> Option<(u64, u64)> {
        let mut span: Option<(u64, u64)> = None;
        for &c in &self.copies {
            let (s, e) = fabric.copy_span(c)?;
            span = Some(match span {
                None => (s, e),
                Some((s0, e0)) => (s0.min(s), e0.max(e)),
            });
        }
        span
    }

    /// Record this collective as a span on the shared collective track
    /// (pid [`telemetry::COLLECTIVE_PID`], thread `tid`), once `fabric.run`
    /// has resolved its copies. Returns the span recorded, if any.
    pub fn emit_span(
        &self,
        fabric: &Fabric,
        rec: &mut dyn telemetry::Recorder,
        name: &str,
        tid: u64,
    ) -> Option<(u64, u64)> {
        let (s, e) = self.span(fabric)?;
        rec.span(telemetry::COLLECTIVE_PID, tid, name, "collective", s, e);
        Some((s, e))
    }
}

/// Ring communicator: one communication stream per device, plus a
/// sequence counter that keeps staging labels unique across invocations.
#[derive(Debug)]
pub struct RingComm {
    streams: Vec<StreamId>,
    seq: u64,
    telemetry: telemetry::RecorderSlot,
}

impl RingComm {
    /// Create one communication stream on every device of the ring.
    pub fn new(devs: &mut [&mut Device]) -> Self {
        RingComm {
            streams: devs.iter_mut().map(|d| d.create_stream()).collect(),
            seq: 0,
            telemetry: telemetry::RecorderSlot::empty(),
        }
    }

    /// Count collective traffic (`collective.*` counters) on a shared
    /// recorder. Span recording stays with the caller (via
    /// [`CommReport::emit_span`]) because copy timings only exist after
    /// `fabric.run`.
    pub fn set_telemetry(&mut self, rec: telemetry::SharedRecorder) {
        self.telemetry.attach(rec);
    }

    /// Detach the shared recorder.
    pub fn clear_telemetry(&mut self) {
        self.telemetry.clear();
    }

    fn count(&self, op: &'static str, rep: &CommReport) {
        self.telemetry.with(|r| {
            r.counter_add(op, 1);
            r.counter_add("collective.bytes_on_wire", rep.bytes_on_wire);
            r.counter_add("collective.copies", rep.copies.len() as u64);
            r.counter_add("collective.reduce_kernels", rep.reduce_kernels);
        });
    }

    /// The communication stream of device `r` (e.g. to make it wait on a
    /// compute event before an overlapped collective).
    pub fn stream(&self, r: usize) -> StreamId {
        self.streams[r]
    }

    /// Number of ring members.
    pub fn size(&self) -> usize {
        self.streams.len()
    }

    /// The segment device `r` owns (holds fully reduced) after
    /// [`reduce_scatter`](RingComm::reduce_scatter).
    pub fn owned_segment(&self, r: usize) -> usize {
        (r + 1) % self.size()
    }

    /// Ring all-reduce of `bucket`: reduce-scatter then all-gather.
    /// `R == 1` is a no-op. Enqueue-only; drive with [`Fabric::run`].
    pub fn all_reduce(
        &mut self,
        fabric: &mut Fabric,
        devs: &mut [&mut Device],
        bucket: &Bucket,
    ) -> Result<CommReport, FabricError> {
        let mut rep = self.reduce_scatter(fabric, devs, bucket)?;
        rep.absorb(self.all_gather(fabric, devs, bucket)?);
        self.telemetry.with(|r| {
            r.counter_add("collective.allreduces", 1);
        });
        Ok(rep)
    }

    /// Reduce-scatter: after `R-1` steps device `r` holds the fully
    /// reduced segment [`owned_segment(r)`](RingComm::owned_segment).
    pub fn reduce_scatter(
        &mut self,
        fabric: &mut Fabric,
        devs: &mut [&mut Device],
        bucket: &Bucket,
    ) -> Result<CommReport, FabricError> {
        let r_count = self.size();
        let mut rep = CommReport::default();
        if r_count < 2 {
            return Ok(rep);
        }
        let segs = segments(bucket.bytes, r_count);
        let buf = BufferId::from_label(&bucket.label);
        let seq = self.next_seq();
        for step in 0..r_count - 1 {
            // Fresh staging label per step (see module docs).
            let stage_label = format!("{}/rs{}.s{}", bucket.label, seq, step);
            let stage = BufferId::from_label(&stage_label);
            for r in 0..r_count {
                let dst = (r + 1) % r_count;
                // Device r forwards segment (r - step) mod R; dst folds it
                // into the same segment of its accumulator.
                let seg = (r + r_count - step) % r_count;
                let range = segs[seg];
                let stage_range = ByteRange::new(0, range.len());
                let copy = fabric.copy_p2p(
                    devs,
                    CopyDesc::new(
                        &format!("p2p:{}->{} {} rs{}", r, dst, bucket.label, step),
                        (r, self.streams[r], MemAccess { buffer: buf, range }),
                        (
                            dst,
                            self.streams[dst],
                            MemAccess {
                                buffer: stage,
                                range: stage_range,
                            },
                        ),
                    ),
                )?;
                rep.copies.push(copy);
                rep.bytes_on_wire += range.len();
                // Fold: accumulator[seg] += staging. FIFO order on the
                // destination communication stream gates it behind the
                // arrival marker.
                devs[dst].launch(
                    self.streams[dst],
                    reduce_kernel(&bucket.label, step, range.len())
                        .reads(stage, stage_range)
                        .reads(buf, range)
                        .writes(buf, range),
                );
                rep.reduce_kernels += 1;
            }
        }
        self.count("collective.reduce_scatters", &rep);
        Ok(rep)
    }

    /// All-gather: assumes device `r` holds segment
    /// [`owned_segment(r)`](RingComm::owned_segment) (the reduce-scatter
    /// postcondition) and circulates the segments until every device holds
    /// the whole bucket. Arriving segments are written straight into the
    /// accumulator — no reduction kernels.
    pub fn all_gather(
        &mut self,
        fabric: &mut Fabric,
        devs: &mut [&mut Device],
        bucket: &Bucket,
    ) -> Result<CommReport, FabricError> {
        let r_count = self.size();
        let mut rep = CommReport::default();
        if r_count < 2 {
            return Ok(rep);
        }
        let segs = segments(bucket.bytes, r_count);
        let buf = BufferId::from_label(&bucket.label);
        for step in 0..r_count - 1 {
            for r in 0..r_count {
                let dst = (r + 1) % r_count;
                // Device r forwards segment (r + 1 - step) mod R: its own
                // finished segment first, then whatever just arrived.
                let seg = (r + 1 + r_count - step) % r_count;
                let range = segs[seg];
                let copy = fabric.copy_p2p(
                    devs,
                    CopyDesc::new(
                        &format!("p2p:{}->{} {} ag{}", r, dst, bucket.label, step),
                        (r, self.streams[r], MemAccess { buffer: buf, range }),
                        (dst, self.streams[dst], MemAccess { buffer: buf, range }),
                    ),
                )?;
                rep.copies.push(copy);
                rep.bytes_on_wire += range.len();
            }
        }
        self.count("collective.all_gathers", &rep);
        Ok(rep)
    }

    /// Broadcast `bucket` from `root` around the ring, segment-pipelined:
    /// each segment hops `R-1` times, and successive segments stream
    /// behind one another so the wall time approaches `B/bw` instead of
    /// `(R-1)·B/bw`.
    pub fn broadcast(
        &mut self,
        fabric: &mut Fabric,
        devs: &mut [&mut Device],
        bucket: &Bucket,
        root: usize,
    ) -> Result<CommReport, FabricError> {
        let r_count = self.size();
        let mut rep = CommReport::default();
        if r_count < 2 {
            return Ok(rep);
        }
        if root >= r_count {
            return Err(FabricError::UnknownDevice {
                device: root,
                num_devices: r_count,
            });
        }
        let segs = segments(bucket.bytes, r_count);
        let buf = BufferId::from_label(&bucket.label);
        // Segment-major enqueue order: an intermediate device's stream
        // alternates receive/forward per segment, so it relays segment i
        // while segment i+1 is still in flight — hop-major order would
        // make every device wait for the whole bucket before forwarding.
        for (seg, &range) in segs.iter().enumerate() {
            for hop in 0..r_count - 1 {
                let src = (root + hop) % r_count;
                let dst = (root + hop + 1) % r_count;
                let copy = fabric.copy_p2p(
                    devs,
                    CopyDesc::new(
                        &format!("p2p:{src}->{dst} {} bc{seg}", bucket.label),
                        (src, self.streams[src], MemAccess { buffer: buf, range }),
                        (dst, self.streams[dst], MemAccess { buffer: buf, range }),
                    ),
                )?;
                rep.copies.push(copy);
                rep.bytes_on_wire += range.len();
            }
        }
        self.count("collective.broadcasts", &rep);
        Ok(rep)
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

use gpu_sim::CopyDesc;

/// Cut `bytes` into `n` contiguous segments, 4-byte aligned, covering
/// `[0, bytes)`; trailing segments may be shorter (or empty for tiny
/// buckets — those produce zero-byte copies that still cost link latency,
/// like real flag messages).
fn segments(bytes: u64, n: usize) -> Vec<ByteRange> {
    let seg = (bytes.div_ceil(n as u64) + 3) & !3;
    (0..n as u64)
        .map(|i| ByteRange::new((i * seg).min(bytes), ((i + 1) * seg).min(bytes)))
        .collect()
}

/// The per-step segment fold `acc[seg] += staged`: element-wise add,
/// purely bandwidth-bound, sized so a big bucket segment uses a few dozen
/// blocks and a tiny one a single block.
fn reduce_kernel(label: &str, step: usize, seg_bytes: u64) -> KernelDesc {
    let blocks = (seg_bytes / (64 * 1024)).clamp(1, 64) as u32;
    let elems = seg_bytes as f64 / 4.0;
    KernelDesc::new(
        &format!("allreduce/{label}/fold{step}"),
        LaunchConfig::new(Dim3::linear(blocks), Dim3::linear(256), 24, 0),
        KernelCost::new(
            elems / blocks as f64,
            3.0 * seg_bytes as f64 / blocks as f64, // read staged + acc, write acc
        ),
    )
    .with_tag(step as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceProps, LinkProps};
    use sanitizer::{SanitizeMode, Sanitizer};

    fn ring_devs(n: usize) -> Vec<Device> {
        (0..n).map(|_| Device::new(DeviceProps::p100())).collect()
    }

    /// Run one all-reduce on `n` devices over `link`; returns
    /// `(wall_ns, report, fabric, devices)` after sanitizer-checking the
    /// merged trace.
    fn run_all_reduce(
        n: usize,
        link: LinkProps,
        bytes: u64,
    ) -> (u64, CommReport, Fabric, Vec<Device>) {
        let mut devs = ring_devs(n);
        let mut fabric = Fabric::ring(n, link);
        let mut handles: Vec<&mut Device> = devs.iter_mut().collect();
        let mut comm = RingComm::new(&mut handles);
        let rep = comm
            .all_reduce(&mut fabric, &mut handles, &Bucket::new("grad", bytes))
            .unwrap();
        let wall = fabric.run(&mut handles);
        drop(handles);
        let mut san = Sanitizer::new(SanitizeMode::Full);
        let views: Vec<&Device> = devs.iter().collect();
        san.check_fabric(&fabric, &views);
        assert_eq!(san.reports(), &[], "all-reduce schedule must be race-free");
        (wall, rep, fabric, devs)
    }

    #[test]
    fn all_reduce_traffic_matches_ring_bound() {
        for n in [2usize, 4, 8] {
            let bytes = 1 << 20;
            let (_, rep, ..) = run_all_reduce(n, LinkProps::nvlink(), bytes);
            // 2(R-1) steps × R copies per step.
            assert_eq!(rep.copies.len(), 2 * n * (n - 1), "n={n}");
            assert_eq!(rep.reduce_kernels as usize, n * (n - 1), "n={n}");
            // Per-device traffic ≈ 2B(R-1)/R, so total ≈ 2B(R-1).
            let per_dev = rep.bytes_on_wire / n as u64;
            let bound = 2 * bytes * (n as u64 - 1) / n as u64;
            assert!(
                per_dev >= bound && per_dev <= bound + 8 * n as u64,
                "n={n}: {per_dev} vs bound {bound}"
            );
        }
    }

    #[test]
    fn single_device_is_a_noop() {
        let (wall, rep, fabric, _) = run_all_reduce(1, LinkProps::pcie3(), 1 << 20);
        assert_eq!(rep.copies.len(), 0);
        assert_eq!(fabric.num_copies(), 0);
        assert_eq!(wall, 0);
    }

    #[test]
    fn nvlink_beats_pcie() {
        let (pcie, ..) = run_all_reduce(4, LinkProps::pcie3(), 8 << 20);
        let (nv, ..) = run_all_reduce(4, LinkProps::nvlink(), 8 << 20);
        assert!(
            nv * 2 < pcie,
            "NVLink all-reduce should be >2x faster: {nv} vs {pcie}"
        );
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce() {
        let n = 4;
        let bytes = 1 << 20;
        let mut devs = ring_devs(n);
        let mut fabric = Fabric::ring(n, LinkProps::nvlink());
        let mut handles: Vec<&mut Device> = devs.iter_mut().collect();
        let mut comm = RingComm::new(&mut handles);
        let bucket = Bucket::new("grad", bytes);
        let rs = comm
            .reduce_scatter(&mut fabric, &mut handles, &bucket)
            .unwrap();
        let ag = comm.all_gather(&mut fabric, &mut handles, &bucket).unwrap();
        fabric.run(&mut handles);
        assert_eq!(rs.copies.len() + ag.copies.len(), 2 * n * (n - 1));
        assert_eq!(ag.reduce_kernels, 0);
        assert_eq!(comm.owned_segment(n - 1), 0);
    }

    #[test]
    fn broadcast_pipelines_segments() {
        let n = 4;
        let bytes: u64 = 4 << 20;
        let mut devs = ring_devs(n);
        let mut fabric = Fabric::ring(n, LinkProps::nvlink());
        let mut handles: Vec<&mut Device> = devs.iter_mut().collect();
        let mut comm = RingComm::new(&mut handles);
        let rep = comm
            .broadcast(&mut fabric, &mut handles, &Bucket::new("weights", bytes), 0)
            .unwrap();
        let wall = fabric.run(&mut handles);
        drop(handles);
        assert_eq!(rep.copies.len(), n * (n - 1));
        let mut san = Sanitizer::new(SanitizeMode::Full);
        let views: Vec<&Device> = devs.iter().collect();
        san.check_fabric(&fabric, &views);
        assert_eq!(san.reports(), &[]);
        // Pipelining: wall must be well below (R-1) sequential full-bucket
        // transfers.
        let sequential = (n as u64 - 1) * LinkProps::nvlink().transfer_ns(bytes);
        assert!(
            wall < sequential * 3 / 4,
            "pipelined broadcast {wall} vs sequential bound {sequential}"
        );
        let mut nonroot = Sanitizer::new(SanitizeMode::Full);
        let _ = &mut nonroot;
        let err = comm
            .broadcast(
                &mut fabric,
                &mut devs.iter_mut().collect::<Vec<_>>(),
                &Bucket::new("weights", bytes),
                9,
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::UnknownDevice { device: 9, .. }));
    }

    #[test]
    fn racy_copy_before_reduce_is_caught() {
        // Fault injection (the satellite test): emulate a buggy schedule
        // where the fold kernel runs on a stream that does NOT wait for
        // the staged segment to arrive — the race the per-step FIFO
        // gating exists to prevent.
        let n = 2;
        let mut devs = ring_devs(n);
        let mut fabric = Fabric::ring(n, LinkProps::nvlink());
        let rogue = devs[1].create_stream();
        let mut handles: Vec<&mut Device> = devs.iter_mut().collect();
        let comm = RingComm::new(&mut handles);
        let bucket = Bucket::new("grad", 1 << 16);
        let segs = segments(bucket.bytes, n);
        let buf = BufferId::from_label(&bucket.label);
        let stage = BufferId::from_label("grad/rs0.s0");
        let stage_range = ByteRange::new(0, segs[0].len());
        fabric
            .copy_p2p(
                &mut handles,
                CopyDesc::new(
                    "p2p:0->1 grad rs0",
                    (
                        0,
                        comm.stream(0),
                        MemAccess {
                            buffer: buf,
                            range: segs[0],
                        },
                    ),
                    (
                        1,
                        comm.stream(1),
                        MemAccess {
                            buffer: stage,
                            range: stage_range,
                        },
                    ),
                ),
            )
            .unwrap();
        // BUG: fold launched on `rogue`, unordered with the arrival.
        handles[1].launch(
            rogue,
            reduce_kernel("grad", 0, segs[0].len())
                .reads(stage, stage_range)
                .reads(buf, segs[0])
                .writes(buf, segs[0]),
        );
        fabric.run(&mut handles);
        drop(handles);
        let mut san = Sanitizer::new(SanitizeMode::Full);
        let views: Vec<&Device> = devs.iter().collect();
        san.check_fabric(&fabric, &views);
        assert_eq!(san.reports().len(), 1, "{:?}", san.reports());
        assert_eq!(san.reports()[0].kind, sanitizer::DiagnosticKind::DataRace);
    }
}
