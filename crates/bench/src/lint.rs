//! The `reproduce lint` sweep: run the plan linter over every captured
//! plan of the four paper nets in each dispatch mode and tabulate the
//! findings.
//!
//! Correctness codes (`PLxxx`) must never fire on shipped schedules — the
//! driver asserts that. Performance codes (`PWxxx`) are *expected* to
//! differ by mode: naive dispatch serializes independent per-sample chains
//! on one stream (PW002), while graph capture records an event after every
//! launch whether or not anything waits on it (PW003).

use crate::{iteration_timings, net_spec, net_spec_with_batch};
use gpu_sim::DeviceProps;
use nn::{DispatchMode, ExecCtx, Net};
use std::collections::BTreeMap;

/// The nets of the paper's Table 5.
pub const NETS: [&str; 4] = ["CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"];

/// The dispatch modes the sweep compares.
pub fn modes() -> [(&'static str, DispatchMode); 3] {
    [
        ("naive", DispatchMode::Naive),
        ("8-streams", DispatchMode::FixedStreams(8)),
        ("glp4nn", DispatchMode::Glp4nn),
    ]
}

/// One (net, mode) cell of the lint sweep.
#[derive(Debug)]
pub struct LintRow {
    /// Net name.
    pub net: String,
    /// Dispatch-mode label.
    pub mode: String,
    /// Plans the linter analyzed.
    pub plans: u64,
    /// Plan nodes analyzed.
    pub nodes: u64,
    /// Correctness (`PLxxx`) findings — must be zero on shipped nets.
    pub correctness: usize,
    /// Performance (`PWxxx`) findings.
    pub performance: usize,
    /// Finding count per code, e.g. `PW002 -> 12`.
    pub by_code: BTreeMap<&'static str, usize>,
    /// Captures fully admitted by a symbolic certificate.
    pub certified_captures: u64,
    /// Capture checks that fell back to pairwise comparison.
    pub pairwise_fallbacks: u64,
    /// Rendered correctness findings (empty when `correctness == 0`).
    pub errors_rendered: String,
}

/// Run two training iterations of each net in each mode with the linter
/// attached, and collect the findings.
pub fn lint_sweep(smoke: bool) -> Vec<LintRow> {
    let mut rows = Vec::new();
    for net in NETS {
        for (label, mode) in modes() {
            let mut ctx = match mode {
                DispatchMode::Glp4nn => ExecCtx::glp4nn(DeviceProps::p100()),
                m => ExecCtx::with_mode(DeviceProps::p100(), m),
            }
            .timing_only()
            .sanitize(sanitizer::SanitizeMode::PlanOnly)
            .lint();
            let spec = if smoke {
                net_spec_with_batch(net, 4, 1)
            } else {
                net_spec(net, 1)
            };
            let mut net_obj = Net::from_spec(&spec);
            // Two iterations so GLP4NN passes profiling and captures its
            // concurrent steady-state plans.
            for _ in 0..2 {
                iteration_timings(&mut ctx, &mut net_obj);
            }
            assert!(
                ctx.sanitizer.reports().is_empty(),
                "{net}/{label}: sanitizer diagnostics on a shipped schedule: {:?}",
                ctx.sanitizer.reports()
            );
            let stats = ctx.sanitizer.stats();
            let linter = ctx.sanitizer.linter().expect("lint() attached a linter");
            let mut by_code: BTreeMap<&'static str, usize> = BTreeMap::new();
            let mut errors: Vec<_> = Vec::new();
            for d in linter.diags() {
                *by_code.entry(d.code.code()).or_insert(0) += 1;
                if d.code.is_correctness() {
                    errors.push(d.clone());
                }
            }
            let correctness = errors.len();
            rows.push(LintRow {
                net: net.to_string(),
                mode: label.to_string(),
                plans: linter.stats().plans_linted,
                nodes: linter.stats().nodes,
                correctness,
                performance: linter.diags().len() - correctness,
                by_code,
                certified_captures: stats.certified_captures,
                pairwise_fallbacks: stats.pairwise_fallbacks,
                errors_rendered: sanitizer::diag::render_all(&errors),
            });
        }
    }
    rows
}

/// Total correctness findings across the sweep.
pub fn total_correctness(rows: &[LintRow]) -> usize {
    rows.iter().map(|r| r.correctness).sum()
}

/// Print the sweep as the `reproduce lint` table.
pub fn print_table(rows: &[LintRow]) {
    println!(
        "{:<10} {:<10} {:>6} {:>7} {:>10} {:>6} {:>6} {:>9} {:>9}  findings",
        "net", "mode", "plans", "nodes", "certified", "fallbk", "PLxxx", "PW002", "PW003"
    );
    for r in rows {
        let pw = |code: &str| r.by_code.get(code).copied().unwrap_or(0);
        let mut findings: Vec<String> = r.by_code.iter().map(|(c, n)| format!("{c}x{n}")).collect();
        if findings.is_empty() {
            findings.push("clean".to_string());
        }
        println!(
            "{:<10} {:<10} {:>6} {:>7} {:>10} {:>6} {:>6} {:>9} {:>9}  {}",
            r.net,
            r.mode,
            r.plans,
            r.nodes,
            r.certified_captures,
            r.pairwise_fallbacks,
            r.correctness,
            pw("PW002"),
            pw("PW003"),
            findings.join(" ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke sweep over the smallest net must certify its conv
    /// captures symbolically and produce zero correctness findings.
    #[test]
    fn smoke_lint_of_cifar10_is_correctness_clean_and_certified() {
        let mut ctx = ExecCtx::glp4nn(DeviceProps::p100())
            .timing_only()
            .sanitize(sanitizer::SanitizeMode::PlanOnly)
            .lint();
        let spec = net_spec_with_batch("CIFAR10", 4, 1);
        let mut net = Net::from_spec(&spec);
        for _ in 0..2 {
            iteration_timings(&mut ctx, &mut net);
        }
        assert!(ctx.sanitizer.reports().is_empty());
        let linter = ctx.sanitizer.linter().unwrap();
        assert!(linter.stats().plans_linted > 0, "linter must have run");
        assert_eq!(
            linter
                .diags()
                .iter()
                .filter(|d| d.code.is_correctness())
                .count(),
            0,
            "{}",
            linter.render()
        );
        let s = ctx.sanitizer.stats();
        assert!(
            s.certified_captures > 0,
            "conv/pool captures must be admitted by symbolic certificates: {s:?}"
        );
    }
}
