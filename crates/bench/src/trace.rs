//! Trace capture: run instrumented workloads with a telemetry recorder
//! attached and hand back the recorded [`telemetry::Telemetry`] for
//! export (Chrome-trace JSON, metrics snapshots) and golden-file tests.
//!
//! All timestamps in the captured traces come from the simulated clock,
//! so a fixed (net, mode, seed) workload produces a byte-stable export.

use gpu_sim::{DeviceProps, LinkProps};
use nn::{DataParallelTrainer, DispatchMode, ExecCtx, Net, SolverConfig};
use telemetry::Telemetry;

/// Recover the owned recorder from the shared handle. Callers must
/// detach every instrumented component (`clear_telemetry`) first so this
/// clone is the last one standing.
fn unwrap_shared(rec: std::sync::Arc<std::sync::Mutex<Telemetry>>) -> Telemetry {
    std::sync::Arc::try_unwrap(rec)
        .unwrap_or_else(|_| panic!("telemetry handle still shared after clear_telemetry"))
        .into_inner()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// Run training iterations of `net` under `mode` on a single simulated
/// P100 with telemetry attached from the first dispatch, so the trace
/// shows the whole GLP4NN lifecycle: the profiled first iteration
/// (profile span, CUPTI flush, MILP solve, plan capture) followed by
/// steady-state plan replays.
pub fn trace_net(net: &str, mode: DispatchMode, smoke: bool) -> Telemetry {
    trace_net_with_stats(net, mode, smoke).0
}

/// [`trace_net`], additionally returning the device's [`DeviceStats`] so
/// tests can reconcile span wall-clock totals (e.g. the sum of `kernel`
/// span durations) against the simulator's own accounting.
pub fn trace_net_with_stats(
    net: &str,
    mode: DispatchMode,
    smoke: bool,
) -> (Telemetry, gpu_sim::DeviceStats) {
    let spec = if smoke {
        crate::net_spec_with_batch(net, 4, 1)
    } else {
        crate::net_spec(net, 1)
    };
    let iters = if smoke { 2 } else { 3 };
    let mut ctx = match mode {
        DispatchMode::Glp4nn => ExecCtx::glp4nn(DeviceProps::p100()),
        m => ExecCtx::with_mode(DeviceProps::p100(), m),
    }
    .timing_only();
    let mut net_obj = Net::from_spec(&spec);
    let rec = telemetry::shared(Telemetry::new());
    ctx.set_telemetry(rec.clone(), 0);
    for _ in 0..iters {
        crate::iteration_timings(&mut ctx, &mut net_obj);
    }
    ctx.clear_telemetry();
    let mut t = unwrap_shared(rec);
    ctx.device.annotate_telemetry(&mut t);
    (t, ctx.device.stats())
}

/// Run a 4-replica data-parallel job (NVLink ring, overlap scheduling,
/// four fixed streams per replica) with telemetry attached: one trace
/// pid per device plus the collective lane, P2P copy spans and flow
/// arrows on the fabric links, and per-bucket all-reduce spans.
pub fn trace_multi_gpu(smoke: bool) -> Telemetry {
    let net = "CIFAR10";
    let batch = if smoke { 4 } else { 16 };
    let spec = crate::net_spec_with_batch(net, batch, 1);
    let devices = vec![DeviceProps::p100(); 4];
    let mut dp = DataParallelTrainer::new(&spec, &devices, false, SolverConfig::default())
        .with_link(LinkProps::nvlink())
        .with_dispatch(DispatchMode::FixedStreams(4))
        .with_overlap(true)
        .timing_only();
    let iters = if smoke { 2 } else { 3 };
    let rec = telemetry::shared(Telemetry::new());
    dp.set_telemetry(rec.clone());
    for _ in 0..iters {
        dp.step();
    }
    dp.clear_telemetry();
    let mut t = unwrap_shared(rec);
    dp.annotate_telemetry(&mut t);
    t
}
