//! Regenerate every table and figure of the GLP4NN paper (ICPP 2018).
//!
//! ```text
//! reproduce <experiment> [options]
//!
//! experiments:
//!   table1   GPU architecture features
//!   table3   hardware profile of the evaluation devices
//!   table4   datasets
//!   table5   DNN layer configurations
//!   fig2     speedup of CaffeNet conv layers vs stream count (P100)
//!   fig3     kernel timeline of Siamese conv1 with multiple streams
//!   fig4     best observed stream count per CaffeNet layer per GPU
//!   fig7     per-iteration speedup of GLP4NN vs naive, 4 nets x 3 GPUs
//!   fig8     stream counts chosen by the analytical model
//!   fig9     per-layer forward times: CIFAR10@TitanXP, Siamese@P100
//!   fig10    GLP4NN memory consumption
//!   table6   one-time overhead T_p / T_a / T_total and training ratio
//!   fig11    CIFAR10 convergence, GLP4NN vs naive  [--iters N]
//!   ablation fusion/reordering (§6) and launch-overhead sensitivity
//!   generations GLP4NN across Fermi→Volta device generations
//!   serving  inference serving with dynamic batching  [--smoke]
//!   fleet    multi-replica serving fleet: routing x fabric x priority mix  [--smoke]
//!   sanitize stream-schedule sanitizer over 4 nets x 3 dispatch modes  [--smoke]
//!   lint     plan linter: symbolic certificates + performance lints, 4 nets x 3 modes  [--smoke]
//!   multi-gpu data-parallel scaling: replicas x interconnect x overlap  [--smoke]
//!   trace    Chrome-trace export: 4 nets x 3 modes + multi-GPU overlap  [--smoke]
//!   bench-json  write BENCH_fleet.json (events/s + wall time, 4 smoke sweeps)
//!   all      everything above (except bench-json, which reads the wall clock)
//! ```
//!
//! Timing numbers are **simulated device time**; `T_p`/`T_a` are real
//! measured wall times of the profiler and MILP solver. See DESIGN.md and
//! EXPERIMENTS.md.

use glp4nn_bench::bench_json;
use glp4nn_bench::fleet as fleet_bench;
use glp4nn_bench::multi_gpu;
use glp4nn_bench::serving;
use glp4nn_bench::*;
use gpu_sim::{Arch, DeviceProps, Timeline};
use nn::data::SyntheticDataset;
use nn::models;
use nn::{DispatchMode, ExecCtx, Net, Solver, SolverConfig};
use tensor::Blob;

fn devices() -> Vec<DeviceProps> {
    DeviceProps::evaluation_set()
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn table1() {
    println!("== Table 1: Overview of GPU architecture features ==");
    println!(
        "{:<12} {:>12} {:>20} {:>22} {:>6} {:>12}",
        "Architecture",
        "CUDA Streams",
        "Dynamic Parallelism",
        "Max Concurrent Kernels",
        "UVM",
        "Tensor Cores"
    );
    for arch in Arch::ALL {
        let f = arch.features();
        let yn = |b: bool| if b { "yes" } else { "x" };
        println!(
            "{:<12} {:>12} {:>20} {:>22} {:>6} {:>12}",
            arch.name(),
            yn(f.cuda_streams),
            yn(f.dynamic_parallelism),
            f.max_concurrent_kernels,
            yn(f.unified_memory),
            yn(f.tensor_cores)
        );
    }
}

fn table3() {
    println!("== Table 3: Hardware profile ==");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10} {:>12} {:>14} {:>8}",
        "GPU",
        "Generation",
        "Core Count",
        "Clock (GHz)",
        "Mem (GB)",
        "BW (GB/s)",
        "Smem/SM (KB)",
        "C"
    );
    for d in devices() {
        println!(
            "{:<12} {:>10} {:>7}x{:<4} {:>12.3} {:>10.0} {:>12.1} {:>14} {:>8}",
            d.name,
            d.arch.name(),
            d.num_sms,
            d.cores_per_sm,
            d.clock_ghz,
            d.mem_size_gb,
            d.mem_bw_gbps,
            d.smem_per_sm / 1024,
            d.concurrency_degree()
        );
    }
}

fn table4() {
    println!("== Table 4: Test datasets (synthetic, shape-identical) ==");
    println!(
        "{:<10} {:>16} {:>12} {:>10} {:>8}",
        "Dataset", "Training Images", "Test Images", "Pixels", "Classes"
    );
    for (d, pixels) in SyntheticDataset::table4() {
        println!(
            "{:<10} {:>16} {:>12} {:>10} {:>8}",
            d.name, d.train_images, d.test_images, pixels, d.classes
        );
    }
}

fn table5() {
    println!("== Table 5: Layers of DNNs used in this paper ==");
    println!(
        "{:<10} {:<8} {:>5} {:>5} {:>5} {:>5} {:>5} {:>3} {:>3}",
        "Net", "Layer", "N", "Ci", "H/W", "Co", "F", "S", "P"
    );
    for (net, layer, n, ci, hw, co, f, s, p) in models::table5_rows() {
        println!(
            "{:<10} {:<8} {:>5} {:>5} {:>5} {:>5} {:>5} {:>3} {:>3}",
            net, layer, n, ci, hw, co, f, s, p
        );
    }
}

fn fig2() {
    println!("== Fig. 2: Speedup of CaffeNet conv layers on P100 vs #streams ==");
    let streams = [1u32, 2, 4, 8, 16, 32];
    print!("{:<8}", "layer");
    for s in streams {
        print!("{:>9}", format!("{s}str"));
    }
    println!();
    for w in workloads_for("CaffeNet") {
        let base = conv_forward_ns(DeviceProps::p100(), DispatchMode::Naive, &w) as f64;
        print!("{:<8}", w.layer);
        for s in streams {
            let t = if s == 1 {
                base
            } else {
                conv_forward_ns(DeviceProps::p100(), DispatchMode::FixedStreams(s), &w) as f64
            };
            print!("{:>9.2}", base / t);
        }
        println!();
    }
}

fn fig3() {
    println!("== Fig. 3: Timeline of kernels with multiple CUDA streams (K40C) ==");
    // Two contrasting layers, 8 samples each so the charts stay readable:
    // Siamese conv1 (MNIST) is launch-bound — kernels finish before the
    // host can issue the next launch, so extra streams buy nothing (the
    // paper's Fig. 9 observation) — while a mid-sized CaffeNet conv shows
    // the overlap the paper's Fig. 3 illustrates.
    let cases = [
        ("Siamese conv1 (MNIST)", {
            let mut w = workloads_for("Siamese")[0];
            w.batch = 8;
            w
        }),
        ("CaffeNet conv3", {
            let mut w = workloads_for("CaffeNet")[2];
            w.batch = 8;
            w
        }),
    ];
    for (label, w) in cases {
        for nstreams in [1u32, 4] {
            let mode = if nstreams == 1 {
                DispatchMode::Naive
            } else {
                DispatchMode::FixedStreams(nstreams)
            };
            let mut ctx = ExecCtx::with_mode(DeviceProps::k40c(), mode).timing_only();
            run_conv_forward(&mut ctx, &w);
            let tl = Timeline::new(ctx.device.trace());
            println!(
                "-- {label}, {nstreams} stream(s): span {:.3} ms --",
                tl.span_ns() as f64 / 1e6
            );
            print!("{}", tl.render_ascii(100));
        }
    }
}

fn fig4() {
    println!("== Fig. 4: Best observed number of concurrent streams (CaffeNet) ==");
    println!(
        "{:<8} {:>8} {:>8} {:>8}",
        "layer", "K40C", "P100", "TitanXP"
    );
    let sweep = [1u32, 2, 3, 4, 6, 8, 12, 16, 24, 32];
    for w in workloads_for("CaffeNet") {
        print!("{:<8}", w.layer);
        for dev in devices() {
            let mut best = (1u32, u64::MAX);
            for &s in &sweep {
                let mode = if s == 1 {
                    DispatchMode::Naive
                } else {
                    DispatchMode::FixedStreams(s)
                };
                let t = conv_forward_ns(dev.clone(), mode, &w);
                if t < best.1 {
                    best = (s, t);
                }
            }
            print!("{:>8}", best.0);
        }
        println!();
    }
}

fn fig7() {
    println!("== Fig. 7: Speedup of GLP4NN-Caffe over naive Caffe per training iteration ==");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "net", "K40C", "P100", "TitanXP"
    );
    for net in ["CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"] {
        print!("{:<10}", net);
        for dev in devices() {
            let (naive, glp) = iteration_speedup(dev, net);
            print!("{:>10.2}", naive as f64 / glp as f64);
        }
        println!();
    }
}

fn fig8() {
    println!("== Fig. 8: Number of streams chosen by the analytical model ==");
    println!(
        "{:<10} {:<8} {:>8} {:>8} {:>8}",
        "net", "layer", "K40C", "P100", "TitanXP"
    );
    for w in table5_workloads() {
        print!("{:<10} {:<8}", w.net, w.layer);
        for dev in devices() {
            let (_, _, streams) = conv_forward_glp4nn_ns(dev, &w);
            print!("{:>8}", streams);
        }
        println!();
    }
}

fn fig9() {
    println!("== Fig. 9: Per-layer forward time — CIFAR10@TitanXP and Siamese@P100 ==");
    for (net, dev) in [
        ("CIFAR10", DeviceProps::titan_xp()),
        ("Siamese", DeviceProps::p100()),
    ] {
        println!("-- {net} on {} --", dev.name);
        let naive = forward_layer_times(dev.clone(), net, false);
        let glp = forward_layer_times(dev, net, true);
        println!(
            "{:<12} {:>12} {:>14} {:>9}",
            "layer", "Caffe (ms)", "GLP4NN (ms)", "speedup"
        );
        for ((l, tn), (_, tg)) in naive.iter().zip(&glp) {
            println!(
                "{:<12} {:>12.3} {:>14.3} {:>9.2}",
                l,
                ms(*tn),
                ms(*tg),
                *tn as f64 / *tg as f64
            );
        }
    }
}

fn profile_net(
    dev: DeviceProps,
    net_name: &str,
) -> (glp4nn::CostBook, glp4nn::framework::Glp4nn, u64) {
    let spec = net_spec(net_name, 1);
    let mut ctx = ExecCtx::glp4nn(dev).timing_only();
    let mut net = Net::from_spec(&spec);
    // Profiling iteration (forward + backward).
    let t_profile = total_ns(&iteration_timings(&mut ctx, &mut net));
    let _ = t_profile;
    // A few steady-state iterations for the training-time ratio.
    let mut book = glp4nn::CostBook::new();
    for _ in 0..3 {
        book.add_iteration(total_ns(&iteration_timings(&mut ctx, &mut net)));
    }
    let glp = ctx.glp.take().unwrap();
    let iter_ns = (book.training_ns / 3) as u64;
    (book, glp, iter_ns)
}

fn fig10() {
    println!("== Fig. 10: Memory consumption of GLP4NN ==");
    println!(
        "{:<10} {:<10} {:>12} {:>12} {:>14} {:>14}",
        "net", "GPU", "mem_tt (KB)", "mem_K (KB)", "mem_cupti (KB)", "total (KB)"
    );
    for net in ["GoogLeNet", "CaffeNet", "CIFAR10", "Siamese"] {
        for dev in devices() {
            let name = dev.name.clone();
            let (_, glp, _) = profile_net(dev, net);
            let c = glp.cost_report(0);
            println!(
                "{:<10} {:<10} {:>12.2} {:>12.2} {:>14.2} {:>14.2}",
                net,
                name,
                c.mem_tt_bytes as f64 / 1024.0,
                c.mem_k_bytes as f64 / 1024.0,
                c.mem_cupti_bytes as f64 / 1024.0,
                c.mem_total_bytes() as f64 / 1024.0
            );
        }
    }
}

fn table6() {
    println!("== Table 6: One-time overhead of GLP4NN ==");
    println!(
        "{:<10} {:<10} {:>10} {:>10} {:>12} {:>12}",
        "net", "GPU", "T_p (ms)", "T_a (ms)", "T_total(ms)", "ratio"
    );
    // Ratio against a full training run: Caffe's reference solvers run
    // 4000 (CIFAR10-quick), 50000 (Siamese), 450000 (CaffeNet) and
    // 2400000 (GoogLeNet) iterations; scale by simulated iteration time.
    let train_iters = |net: &str| -> u64 {
        match net {
            "CIFAR10" => 4000,
            "Siamese" => 50_000,
            "CaffeNet" => 450_000,
            _ => 2_400_000,
        }
    };
    for net in ["GoogLeNet", "CaffeNet", "CIFAR10", "Siamese"] {
        for dev in devices() {
            let name = dev.name.clone();
            let (_, glp, iter_ns) = profile_net(dev, net);
            let c = glp.cost_report(0);
            let total_train_ns = iter_ns as u128 * train_iters(net) as u128;
            let ratio = c.t_total().as_nanos() as f64 / total_train_ns as f64;
            println!(
                "{:<10} {:<10} {:>10.3} {:>10.3} {:>12.3} {:>11.5}%",
                net,
                name,
                c.t_p.as_secs_f64() * 1e3,
                c.t_a.as_secs_f64() * 1e3,
                c.t_total().as_secs_f64() * 1e3,
                ratio * 100.0
            );
        }
    }
}

fn fig11(iters: usize) {
    println!("== Fig. 11: Training CIFAR10 on P100 — train/test loss per iteration ==");
    let batch = 100;
    // Held-out test samples: indices far beyond anything training touches.
    const TEST_OFFSET: usize = 10_000_000;
    let eval_every = (iters / 10).max(1);
    let run = |glp: bool| -> (Vec<f32>, Vec<(usize, f32)>) {
        let mut ctx = if glp {
            ExecCtx::glp4nn(DeviceProps::p100())
        } else {
            ExecCtx::naive(DeviceProps::p100())
        };
        let net = Net::from_spec(&models::cifar10_quick(batch, 42));
        let mut solver = Solver::new(net, SolverConfig::default());
        let ds = SyntheticDataset::cifar_like(42);
        let mut train_losses = Vec::new();
        let mut test_losses = Vec::new();
        let load = |net: &mut Net, start: usize| {
            let mut data = std::mem::replace(net.blob_mut("data"), Blob::empty());
            let mut label = std::mem::replace(net.blob_mut("label"), Blob::empty());
            ds.fill_batch(start, &mut data, &mut label);
            *net.blob_mut("data") = data;
            *net.blob_mut("label") = label;
        };
        for it in 0..iters {
            load(&mut solver.net, it * batch);
            train_losses.push(solver.step(&mut ctx));
            if it % eval_every == 0 || it + 1 == iters {
                // Test evaluation: forward only, inference mode.
                solver.net.set_train(false);
                load(&mut solver.net, TEST_OFFSET);
                test_losses.push((it, solver.net.forward(&mut ctx)));
                solver.net.set_train(true);
            }
        }
        (train_losses, test_losses)
    };
    let (naive, naive_test) = run(false);
    let (glp, glp_test) = run(true);
    println!(
        "{:<6} {:>12} {:>14} {:>12} {:>10}",
        "iter", "train(Caffe)", "train(GLP4NN)", "test(Caffe)", "identical"
    );
    let mut test_iter = naive_test.iter().peekable();
    let step = (iters / 20).max(1);
    for i in (0..iters).step_by(step) {
        let test_str = match test_iter.peek() {
            Some(&&(ti, tv)) if ti <= i => {
                while test_iter
                    .peek()
                    .map(|&&(ti, _)| ti + eval_every <= i)
                    .unwrap_or(false)
                {
                    test_iter.next();
                }
                format!("{tv:.6}")
            }
            _ => "-".to_string(),
        };
        println!(
            "{:<6} {:>12.6} {:>14.6} {:>12} {:>10}",
            i,
            naive[i],
            glp[i],
            test_str,
            if naive[i].to_bits() == glp[i].to_bits() {
                "yes"
            } else {
                "NO"
            }
        );
    }
    let identical = naive
        .iter()
        .zip(&glp)
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && naive_test
            .iter()
            .zip(&glp_test)
            .all(|((_, a), (_, b))| a.to_bits() == b.to_bits());
    println!(
        "convergence-invariance: train+test losses bitwise identical across all {iters} iterations: {}",
        if identical { "yes" } else { "NO" }
    );
    println!(
        "train loss {:.4} -> {:.4}; test loss {:.4} -> {:.4}",
        naive[0],
        naive[iters - 1],
        naive_test[0].1,
        naive_test.last().unwrap().1
    );
}

fn ablation() {
    println!("== Ablation: §6 kernel fusion / reordering extensions ==");
    println!("(steady-state simulated iteration time; fusion targets launch-bound small kernels)");
    println!(
        "{:<10} {:<10} {:>14} {:>14} {:>14} {:>9}",
        "net", "GPU", "baseline (ms)", "fusion (ms)", "fusion+LPT", "gain"
    );
    for net in ["Siamese", "CIFAR10"] {
        for dev in devices() {
            let steady = |optim: glp4nn::OptimConfig| -> u64 {
                let mut ctx = ExecCtx::glp4nn_with(dev.clone(), optim).timing_only();
                let mut net_obj = Net::from_spec(&net_spec(net, 1));
                ctx.take_timings();
                net_obj.forward(&mut ctx); // profiling
                ctx.take_timings();
                net_obj.forward(&mut ctx); // steady
                ctx.take_timings().iter().map(|t| t.elapsed_ns).sum()
            };
            let base = steady(glp4nn::OptimConfig::default());
            let fusion = steady(glp4nn::OptimConfig {
                fusion: true,
                ..glp4nn::OptimConfig::default()
            });
            let all = steady(glp4nn::OptimConfig::all());
            println!(
                "{:<10} {:<10} {:>14.3} {:>14.3} {:>14.3} {:>8.1}%",
                net,
                dev.name,
                ms(base),
                ms(fusion),
                ms(all),
                (1.0 - all as f64 / base as f64) * 100.0
            );
        }
    }
    println!();
    println!("-- batch-level parallelism extended to pooling (paper §3.3.1 note) --");
    println!(
        "{:<10} {:<10} {:>14} {:>16} {:>8}",
        "net", "GPU", "conv-only (ms)", "conv+pool (ms)", "gain"
    );
    for net in ["CIFAR10", "CaffeNet"] {
        for dev in devices() {
            let steady = |all: bool| -> u64 {
                let mut ctx = ExecCtx::glp4nn(dev.clone()).timing_only();
                if all {
                    ctx = ctx.batch_parallel_all();
                }
                let mut net_obj = Net::from_spec(&net_spec(net, 1));
                net_obj.forward(&mut ctx);
                ctx.take_timings();
                net_obj.forward(&mut ctx);
                ctx.take_timings().iter().map(|t| t.elapsed_ns).sum()
            };
            let conv_only = steady(false);
            let all = steady(true);
            println!(
                "{:<10} {:<10} {:>14.3} {:>16.3} {:>7.1}%",
                net,
                dev.name,
                ms(conv_only),
                ms(all),
                (1.0 - all as f64 / conv_only as f64) * 100.0
            );
        }
    }
    println!();
    println!("-- launch-overhead sensitivity (Siamese conv1, naive vs 8 streams) --");
    println!(
        "{:>16} {:>12} {:>12} {:>9}",
        "T_launch (us)", "naive (ms)", "8str (ms)", "speedup"
    );
    for t_launch_us in [1u64, 2, 4, 8] {
        let mut dev = DeviceProps::k40c();
        dev.launch_overhead_ns = t_launch_us * 1000;
        let w = workloads_for("Siamese")[0];
        let naive = conv_forward_ns(dev.clone(), DispatchMode::Naive, &w);
        let conc = conv_forward_ns(dev, DispatchMode::FixedStreams(8), &w);
        println!(
            "{:>16} {:>12.3} {:>12.3} {:>9.2}",
            t_launch_us,
            ms(naive),
            ms(conc),
            naive as f64 / conc as f64
        );
    }
}

fn generations() {
    println!("== Generation sweep: GLP4NN across Fermi → Volta (extension of Table 1) ==");
    println!(
        "(CIFAR10 per-iteration speedup and model-chosen streams for conv2, per architecture)"
    );
    println!(
        "{:<20} {:<8} {:>4} {:>9} {:>14}",
        "GPU", "arch", "C", "speedup", "conv2 streams"
    );
    for dev in DeviceProps::generation_set() {
        let (naive, glp) = iteration_speedup(dev.clone(), "CIFAR10");
        let w = workloads_for("CIFAR10")[1];
        let (_, _, streams) = conv_forward_glp4nn_ns(dev.clone(), &w);
        println!(
            "{:<20} {:<8} {:>4} {:>8.2}x {:>14}",
            dev.name,
            dev.arch.name(),
            dev.concurrency_degree(),
            naive as f64 / glp as f64,
            streams
        );
    }
    println!("\nnewer generations expose more concurrency (Table 1's C column) and");
    println!("lower launch overhead; the framework adapts without reconfiguration.");
}

fn serving(smoke: bool) {
    let rows = serving::serving_sweep(smoke);
    serving::print_serving_table(&rows, smoke);
    assert!(
        serving::glp4nn_dominates(&rows),
        "GLP4NN throughput fell below naive at some operating point"
    );
}

fn fleet_cmd(smoke: bool) {
    let rows = fleet_bench::fleet_sweep(smoke);
    fleet_bench::print_fleet_table(&rows, smoke);
    assert!(
        fleet_bench::jsq_matches_or_beats_rr(&rows),
        "JSQ fell below round-robin on SLO attainment at some sweep point"
    );
    if smoke {
        assert_eq!(
            fleet_bench::total_sanitizer_reports(&rows),
            0,
            "sanitizer reported diagnostics on the sanitized fleet smoke sweep"
        );
    }
    println!();
    let demo = fleet_bench::autoscale_demo(smoke);
    fleet_bench::print_autoscale_demo(&demo);
    assert!(
        demo.scale_ups >= 1 && demo.scale_downs >= 1,
        "autoscaler demo must scale up under the burst and down through the trickle"
    );

    // A smoke-sized traced run: every replica records kernel spans under
    // its own trace pid, the fleet adds wave spans and control instants.
    // Written next to the other telemetry exports so the validate-trace
    // round-trip in CI covers it.
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let mut cfg = fleet_bench::cell_config(
        ::fleet::fabric_uniform8(),
        ::fleet::RouterPolicy::JoinShortestQueue,
        ::fleet::PriorityMix::premium_heavy(),
        true,
    );
    cfg.num_requests = 400;
    let mut sim = ::fleet::FleetSim::new(cfg).unwrap_or_else(|e| panic!("{e}"));
    let rec = telemetry::shared(telemetry::Telemetry::new());
    sim.set_telemetry(rec.clone());
    let traced = sim.run();
    {
        let mut guard = rec.lock().unwrap_or_else(|p| p.into_inner());
        sim.annotate_telemetry(&mut guard);
    }
    drop(sim);
    let t = std::sync::Arc::try_unwrap(rec)
        .unwrap_or_else(|_| panic!("telemetry handle still shared after fleet run"))
        .into_inner()
        .unwrap_or_else(|poison| poison.into_inner());
    let json = t.chrome_trace();
    let summary = telemetry::validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("fleet trace failed validation: {e}"));
    let path = dir.join("fleet_jsq.trace.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!();
    println!(
        "traced fleet run (400 requests, JSQ, sanitized): {} spans across {} tracks, {} -> {}",
        summary.spans,
        summary.tracks,
        traced.completed,
        path.display()
    );
    println!("\nfleet: JSQ >= round-robin SLO attainment at every sweep point; autoscaler");
    println!("scaled both directions; sanitized replicas + cross-device check stayed clean");
}

fn bench_json_cmd() {
    let entries = bench_json::run_benches();
    let json = bench_json::to_json(&entries);
    let path = std::path::Path::new("BENCH_fleet.json");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("== bench-json: simulator throughput over the four smoke sweeps ==");
    println!("(events are simulated work items; wall time is the host clock — this file");
    println!(" is the only reproduction output allowed to contain wall-clock numbers)");
    println!(
        "{:<16} {:<20} {:>12} {:>10} {:>14}",
        "sweep", "unit", "events", "wall (s)", "events/s"
    );
    for e in &entries {
        println!(
            "{:<16} {:<20} {:>12} {:>10.3} {:>14.1}",
            e.name,
            e.unit,
            e.events,
            e.wall_s,
            e.events_per_s()
        );
    }
    println!("wrote {}", path.display());
}

fn sanitize(smoke: bool) {
    println!("== Sanitize: plan validation + happens-before replay, 4 nets x 3 dispatch modes ==");
    println!("(two training iterations each so GLP4NN reaches concurrent steady state)");
    println!(
        "{:<10} {:<10} {:>7} {:>12} {:>12} {:>13} {:>13} {:>8}",
        "net",
        "mode",
        "plans",
        "plan pairs",
        "chunk pairs",
        "trace kerns",
        "trace pairs",
        "reports"
    );
    let modes = [
        ("naive", DispatchMode::Naive),
        ("8-streams", DispatchMode::FixedStreams(8)),
        ("glp4nn", DispatchMode::Glp4nn),
    ];
    let mut total_reports = 0usize;
    for net in ["CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"] {
        for (label, mode) in modes {
            let mut ctx = match mode {
                DispatchMode::Glp4nn => ExecCtx::glp4nn(DeviceProps::p100()),
                m => ExecCtx::with_mode(DeviceProps::p100(), m),
            }
            .timing_only()
            .sanitize(sanitizer::SanitizeMode::Full);
            let spec = if smoke {
                net_spec_with_batch(net, 4, 1)
            } else {
                net_spec(net, 1)
            };
            let mut net_obj = Net::from_spec(&spec);
            for _ in 0..2 {
                iteration_timings(&mut ctx, &mut net_obj);
            }
            let s = ctx.sanitizer.stats();
            let reports = ctx.sanitizer.reports();
            println!(
                "{:<10} {:<10} {:>7} {:>12} {:>12} {:>13} {:>13} {:>8}",
                net,
                label,
                s.plans_checked,
                s.plan_pairs,
                s.chunk_pairs,
                s.trace_kernels,
                s.trace_pairs,
                reports.len()
            );
            for d in reports {
                println!("  {d}");
            }
            total_reports += reports.len();
        }
    }
    assert_eq!(
        total_reports, 0,
        "sanitizer reported {total_reports} diagnostic(s) on schedules that must be clean"
    );
    println!("\nsanitize: every schedule clean — chunk regions disjoint, all conflicts ordered");
}

fn lint_cmd(smoke: bool) {
    println!("== Lint: symbolic disjointness certificates + plan lints, 4 nets x 3 modes ==");
    println!("(PLxxx = correctness, must be zero; PWxxx = performance findings, expected to");
    println!(" differ by mode: naive serializes independent chains, capture records spare events)");
    let rows = glp4nn_bench::lint::lint_sweep(smoke);
    glp4nn_bench::lint::print_table(&rows);
    let bad = glp4nn_bench::lint::total_correctness(&rows);
    if bad > 0 {
        for r in &rows {
            if r.correctness > 0 {
                println!("\n-- {} / {} --\n{}", r.net, r.mode, r.errors_rendered);
            }
        }
    }
    assert_eq!(
        bad, 0,
        "linter found {bad} correctness finding(s) on shipped schedules"
    );
    let certified: u64 = rows.iter().map(|r| r.certified_captures).sum();
    assert!(
        certified > 0,
        "no capture was admitted by a symbolic certificate"
    );
    println!(
        "\nlint: zero correctness findings; {certified} captures admitted by symbolic certificates"
    );
}

fn replay(smoke: bool) {
    println!("== Replay: capture-once / replay-many vs imperative dispatch, 4 nets x 3 modes ==");
    println!("(same training iterations twice: plan reuse on vs off; timelines must be identical)");
    println!(
        "{:<10} {:<10} {:>9} {:>9} {:>10} {:>8}",
        "net", "mode", "kernels", "captures", "timeline", "reports"
    );
    let modes = [
        ("naive", DispatchMode::Naive),
        ("8-streams", DispatchMode::FixedStreams(8)),
        ("glp4nn", DispatchMode::Glp4nn),
    ];
    type TraceRow = (String, u64, u32, u64, u64);
    let tl = |ctx: &ExecCtx| -> Vec<TraceRow> {
        ctx.device
            .trace()
            .iter()
            .map(|t| (t.name.clone(), t.tag, t.stream.raw(), t.start_ns, t.end_ns))
            .collect()
    };
    for net in ["CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"] {
        for (label, mode) in modes {
            let spec = if smoke {
                net_spec_with_batch(net, 4, 1)
            } else {
                net_spec(net, 1)
            };
            let iters = if smoke { 2 } else { 3 };
            // Replay arm: plan reuse on, full sanitizing (static checks at
            // capture, happens-before replay per iteration). Imperative
            // arm: reuse off, so every iteration re-captures — the
            // behaviour of the old per-iteration dispatch loops.
            let mk = |reuse: bool| {
                let mut ctx = match mode {
                    DispatchMode::Glp4nn => ExecCtx::glp4nn(DeviceProps::p100()),
                    m => ExecCtx::with_mode(DeviceProps::p100(), m),
                }
                .timing_only();
                if reuse {
                    ctx = ctx.sanitize(sanitizer::SanitizeMode::Full);
                } else {
                    ctx = ctx.without_plan_reuse();
                }
                ctx
            };
            let mut replayed = mk(true);
            let mut imperative = mk(false);
            for ctx in [&mut replayed, &mut imperative] {
                let mut net_obj = Net::from_spec(&spec);
                for _ in 0..iters {
                    iteration_timings(ctx, &mut net_obj);
                }
            }
            let a = tl(&replayed);
            let b = tl(&imperative);
            assert!(
                a == b,
                "{net}/{label}: replayed timeline diverged from imperative dispatch \
                 ({} vs {} kernels)",
                a.len(),
                b.len()
            );
            let reports = replayed.sanitizer.reports().len();
            for d in replayed.sanitizer.reports() {
                println!("  {d}");
            }
            assert_eq!(
                reports, 0,
                "{net}/{label}: sanitizer flagged a replayed schedule"
            );
            println!(
                "{:<10} {:<10} {:>9} {:>9} {:>10} {:>8}",
                net,
                label,
                a.len(),
                replayed.plan_captures(),
                "identical",
                reports
            );
        }
    }
    println!("\nreplay: every timeline identical to the imperative path; zero sanitizer reports");
}

fn multi_gpu_cmd(smoke: bool) {
    println!("== Multi-GPU: data-parallel scaling over the simulated fabric ==");
    println!("(P100 replicas, 4 streams each; ring all-reduce of per-layer gradient buckets;");
    println!(" overlap = layer k's all-reduce gated behind layer k's backward, issued deferred)\n");
    let weak = multi_gpu::multi_gpu_sweep(smoke);
    multi_gpu::print_scaling_table(&weak, "weak scaling (per-replica batch fixed)");
    assert!(
        multi_gpu::overlap_dominates(&weak),
        "overlap scheduling fell behind no-overlap at some operating point"
    );
    println!();
    let strong = multi_gpu::strong_scaling_sweep(smoke);
    multi_gpu::print_scaling_table(&strong, "strong scaling (global batch fixed, CIFAR10)");
    assert!(
        multi_gpu::overlap_dominates(&strong),
        "overlap scheduling fell behind no-overlap at some operating point"
    );
    println!();
    multi_gpu::print_utilization(smoke);
    println!("\nmulti-gpu: overlap >= no-overlap throughput at every operating point;");
    println!("full sweep ran under the sanitizer (per-device + cross-device) with zero reports");
}

fn trace_cmd(smoke: bool) {
    println!("== Trace: Chrome-trace export, 4 nets x 3 modes + a multi-GPU overlap run ==");
    println!("(all span timestamps are simulated ns; traces open in chrome://tracing or Perfetto)");
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    println!(
        "{:<10} {:<10} {:>7} {:>8} {:>7} {:>7}  file",
        "net", "mode", "spans", "instants", "flows", "bytes"
    );
    let write_trace = |label: String, t: &telemetry::Telemetry, net: &str, mode: &str| {
        let json = t.chrome_trace();
        let summary = telemetry::validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("{label}: exported trace failed validation: {e}"));
        assert_eq!(
            summary.spans,
            t.spans().len(),
            "{label}: B/E pair count diverged from recorded spans"
        );
        let path = dir.join(format!("{label}.trace.json"));
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!(
            "{:<10} {:<10} {:>7} {:>8} {:>7} {:>7}  {}",
            net,
            mode,
            t.spans().len(),
            t.instants().len(),
            t.flows().len(),
            json.len(),
            path.display()
        );
    };
    let modes = [
        ("naive", DispatchMode::Naive),
        ("8str", DispatchMode::FixedStreams(8)),
        ("glp4nn", DispatchMode::Glp4nn),
    ];
    for net in ["CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"] {
        for (label, mode) in modes {
            let t = trace::trace_net(net, mode, smoke);
            write_trace(format!("{}_{label}", net.to_lowercase()), &t, net, label);
        }
    }
    let t = trace::trace_multi_gpu(smoke);
    write_trace("multi_gpu_overlap".to_string(), &t, "CIFAR10", "dp-overlap");
    println!("\n-- metrics snapshot of the multi-GPU overlap run --");
    print!("{}", t.metrics_snapshot());
    println!("\ntrace: 13 traces validated (strict B/E nesting per track) and written");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let iters = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(40usize);
    let smoke = args.iter().any(|a| a == "--smoke");

    match cmd {
        "table1" => table1(),
        "table3" => table3(),
        "table4" => table4(),
        "table5" => table5(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "table6" => table6(),
        "fig11" => fig11(iters),
        "ablation" => ablation(),
        "generations" => generations(),
        "serving" => serving(smoke),
        "fleet" => fleet_cmd(smoke),
        "bench-json" => bench_json_cmd(),
        "sanitize" => sanitize(smoke),
        "lint" => lint_cmd(smoke),
        "replay" => replay(smoke),
        "multi-gpu" => multi_gpu_cmd(smoke),
        "trace" => trace_cmd(smoke),
        "all" => {
            table1();
            println!();
            table3();
            println!();
            table4();
            println!();
            table5();
            println!();
            fig2();
            println!();
            fig3();
            println!();
            fig4();
            println!();
            fig7();
            println!();
            fig8();
            println!();
            fig9();
            println!();
            fig10();
            println!();
            table6();
            println!();
            fig11(iters);
            println!();
            ablation();
            println!();
            generations();
            println!();
            serving(smoke);
            println!();
            fleet_cmd(smoke);
            println!();
            sanitize(smoke);
            println!();
            lint_cmd(smoke);
            println!();
            replay(smoke);
            println!();
            multi_gpu_cmd(smoke);
            println!();
            trace_cmd(smoke);
        }
        _ => {
            eprintln!(
                "usage: reproduce <table1|ablation|table3|table4|table5|fig2|fig3|fig4|fig7|fig8|fig9|fig10|table6|fig11|generations|serving|fleet|bench-json|sanitize|lint|replay|multi-gpu|trace|all> [--iters N] [--smoke]"
            );
            std::process::exit(2);
        }
    }
}
