//! The `reproduce serving` experiment: inference serving with dynamic
//! batching, swept over arrival rate x batch policy backend x device.
//!
//! Each operating point runs the same seeded Poisson arrival trace
//! through the same dynamic batcher under three dispatch backends —
//! naive, a fixed 8-stream pool, and the full GLP4NN runtime — and
//! reports throughput plus p50/p95/p99 end-to-end latency from the
//! simulated clock. Everything is deterministic: two invocations print
//! byte-identical tables.

use gpu_sim::DeviceProps;
use nn::DispatchMode;
use serve::{run_serving, BatchPolicy, ServeConfig, ServingReport};

/// The three serving backends compared, in print order.
pub const SERVING_MODES: [(&str, DispatchMode); 3] = [
    ("naive", DispatchMode::Naive),
    ("8str", DispatchMode::FixedStreams(8)),
    ("glp4nn", DispatchMode::Glp4nn),
];

/// One operating point's results: every backend at one device x rate.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Device name.
    pub device: String,
    /// Mean arrival rate (requests per simulated second).
    pub rate_rps: f64,
    /// `(mode name, report)` per backend, in [`SERVING_MODES`] order.
    pub reports: Vec<(&'static str, ServingReport)>,
}

/// Arrival rates swept (requests per simulated second).
pub fn serving_rates(smoke: bool) -> Vec<f64> {
    if smoke {
        vec![2000.0]
    } else {
        vec![500.0, 2000.0, 8000.0]
    }
}

/// The serving configuration at one operating point.
pub fn serving_config(
    device: DeviceProps,
    mode: DispatchMode,
    rate_rps: f64,
    smoke: bool,
) -> ServeConfig {
    ServeConfig {
        device,
        mode,
        model: "CIFAR10".to_string(),
        rate_rps,
        num_requests: if smoke { 40 } else { 300 },
        policy: BatchPolicy::new(8, 2_000_000),
        queue_capacity: 1024,
        seed: 42,
    }
}

/// Run the full sweep: every device in the paper's evaluation set, every
/// arrival rate, every backend.
pub fn serving_sweep(smoke: bool) -> Vec<ServingRow> {
    let mut rows = Vec::new();
    for dev in DeviceProps::evaluation_set() {
        for &rate in &serving_rates(smoke) {
            let reports = SERVING_MODES
                .iter()
                .map(|&(name, mode)| {
                    let cfg = serving_config(dev.clone(), mode, rate, smoke);
                    let report = run_serving(&cfg).unwrap_or_else(|e| panic!("{e}"));
                    (name, report)
                })
                .collect();
            rows.push(ServingRow {
                device: dev.name.clone(),
                rate_rps: rate,
                reports,
            });
        }
    }
    rows
}

/// Whether GLP4NN matched or beat naive throughput at every operating
/// point (the profile-once-then-concurrent payoff under serving load).
pub fn glp4nn_dominates(rows: &[ServingRow]) -> bool {
    rows.iter().all(|row| {
        let tput = |name: &str| {
            row.reports
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, r)| r.throughput_rps)
                .unwrap_or(0.0)
        };
        tput("glp4nn") >= tput("naive")
    })
}

/// Print the sweep as a table, plus the dominance verification line.
pub fn print_serving_table(rows: &[ServingRow], smoke: bool) {
    println!("== Serving: dynamic batching over the GLP4NN runtime ==");
    println!(
        "(CIFAR10 inference; Poisson arrivals; batch policy: size 8 or 2 ms delay; {} requests/point{})",
        if smoke { 40 } else { 300 },
        if smoke { "; smoke" } else { "" }
    );
    println!(
        "{:<10} {:>9} {:<8} {:>11} {:>9} {:>9} {:>9} {:>7} {:>6} {:>5}",
        "device",
        "rate(r/s)",
        "mode",
        "tput(r/s)",
        "p50(ms)",
        "p95(ms)",
        "p99(ms)",
        "batch",
        "#batch",
        "shed"
    );
    let ms = |ns: u64| ns as f64 / 1e6;
    for row in rows {
        for (name, r) in &row.reports {
            println!(
                "{:<10} {:>9.0} {:<8} {:>11.1} {:>9.3} {:>9.3} {:>9.3} {:>7.2} {:>6} {:>5}",
                row.device,
                row.rate_rps,
                name,
                r.throughput_rps,
                ms(r.latency.p50_ns),
                ms(r.latency.p95_ns),
                ms(r.latency.p99_ns),
                r.mean_batch,
                r.batches,
                r.shed
            );
        }
    }
    println!(
        "GLP4NN throughput >= naive at all {} operating points: {}",
        rows.len(),
        if glp4nn_dominates(rows) { "yes" } else { "NO" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_all_devices_and_modes() {
        let rows = serving_sweep(true);
        assert_eq!(rows.len(), 3, "3 devices x 1 smoke rate");
        for row in &rows {
            assert_eq!(row.reports.len(), 3);
            for (_, r) in &row.reports {
                assert_eq!(r.completed + r.shed, 40);
            }
        }
        assert!(glp4nn_dominates(&rows), "GLP4NN must not lose to naive");
    }

    #[test]
    fn full_sweep_has_three_rates() {
        assert_eq!(serving_rates(false).len(), 3);
    }
}
