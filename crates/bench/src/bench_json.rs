//! The `reproduce bench-json` harness: machine-readable throughput
//! numbers for the repo's four headline smoke sweeps.
//!
//! This is the **only** reproduction path allowed to read the host's
//! wall clock: the emitted `BENCH_fleet.json` pairs each sweep's
//! simulated-event count (deterministic) with the real time the host
//! took to simulate it, so CI history can track simulator throughput
//! regressions. Everything printed by the other `reproduce` commands
//! stays wall-clock free.

use std::time::Instant;

use gpu_sim::DeviceProps;
use nn::{DispatchMode, ExecCtx, Net};

/// One benchmark entry: a named smoke sweep, how many simulated events
/// it processed, and the wall time it took.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Sweep name.
    pub name: &'static str,
    /// What one event is for this sweep.
    pub unit: &'static str,
    /// Simulated events processed (deterministic across runs).
    pub events: u64,
    /// Host wall time for the sweep, seconds (varies run to run).
    pub wall_s: f64,
}

impl BenchEntry {
    /// Events simulated per wall-clock second.
    pub fn events_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// The plan-replay smoke workload: 4 nets x 3 modes, two training
/// iterations each with plan reuse on. Events are simulated kernels.
fn replay_events() -> u64 {
    let modes = [
        DispatchMode::Naive,
        DispatchMode::FixedStreams(8),
        DispatchMode::Glp4nn,
    ];
    let mut kernels = 0u64;
    for net in ["CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"] {
        for mode in modes {
            let mut ctx = match mode {
                DispatchMode::Glp4nn => ExecCtx::glp4nn(DeviceProps::p100()),
                m => ExecCtx::with_mode(DeviceProps::p100(), m),
            }
            .timing_only();
            let mut net_obj = Net::from_spec(&crate::net_spec_with_batch(net, 4, 1));
            for _ in 0..2 {
                crate::iteration_timings(&mut ctx, &mut net_obj);
            }
            kernels += ctx.device.trace().len() as u64;
        }
    }
    kernels
}

/// Repeated conv-layer capture with plan reuse off, so every forward
/// re-captures and re-verifies its schedule. `symbolic` chooses the
/// certificate path; `!symbolic` forces the O(chunks²) pairwise baseline.
/// Returns the number of chunks verified (identical for both arms, so
/// `events_per_s` directly compares capture-time verification cost).
fn capture_events(symbolic: bool) -> u64 {
    const REPS: usize = 4;
    let mut ctx = ExecCtx::with_mode(DeviceProps::p100(), DispatchMode::FixedStreams(8))
        .timing_only()
        .sanitize(sanitizer::SanitizeMode::PlanOnly)
        .without_plan_reuse();
    ctx.sanitizer.set_force_pairwise(!symbolic);
    let mut chunks = 0u64;
    for w in crate::table5_workloads() {
        for _ in 0..REPS {
            crate::run_conv_forward(&mut ctx, &w);
            chunks += w.batch as u64;
        }
    }
    let stats = ctx.sanitizer.stats();
    if symbolic {
        assert_eq!(
            stats.symbolic_chunks, chunks,
            "every capture must be admitted by its certificate"
        );
    } else {
        assert_eq!(stats.symbolic_chunks, 0, "baseline arm must stay pairwise");
        assert!(stats.chunk_pairs > 0);
    }
    chunks
}

/// Run all the smoke sweeps under the wall clock.
pub fn run_benches() -> Vec<BenchEntry> {
    let mut entries = Vec::new();

    let (kernels, wall_s) = timed(replay_events);
    entries.push(BenchEntry {
        name: "replay-smoke",
        unit: "simulated kernels",
        events: kernels,
        wall_s,
    });

    let (rows, wall_s) = timed(|| crate::multi_gpu::multi_gpu_sweep(true));
    let images: u64 = rows
        .iter()
        .map(|r| (r.batch * r.replicas * 2) as u64) // 2 steps per point
        .sum();
    entries.push(BenchEntry {
        name: "multi-gpu-smoke",
        unit: "simulated images",
        events: images,
        wall_s,
    });

    let (rows, wall_s) = timed(|| crate::serving::serving_sweep(true));
    let requests: u64 = rows
        .iter()
        .flat_map(|row| row.reports.iter())
        .map(|(_, r)| (r.completed + r.shed) as u64)
        .sum();
    entries.push(BenchEntry {
        name: "serving-smoke",
        unit: "simulated requests",
        events: requests,
        wall_s,
    });

    let (rows, wall_s) = timed(|| crate::fleet::fleet_sweep(true));
    let offered: u64 = rows.iter().map(|r| r.offered as u64).sum();
    entries.push(BenchEntry {
        name: "fleet-smoke",
        unit: "simulated requests",
        events: offered,
        wall_s,
    });

    // Capture-time verification: symbolic certificates vs the pairwise
    // baseline over identical work, so the events/s ratio is the speedup.
    let (chunks, wall_s) = timed(|| capture_events(true));
    entries.push(BenchEntry {
        name: "capture-symbolic",
        unit: "verified chunks",
        events: chunks,
        wall_s,
    });
    let (chunks, wall_s) = timed(|| capture_events(false));
    entries.push(BenchEntry {
        name: "capture-pairwise",
        unit: "verified chunks",
        events: chunks,
        wall_s,
    });

    let (rows, wall_s) = timed(|| crate::lint::lint_sweep(true));
    let nodes: u64 = rows.iter().map(|r| r.nodes).sum();
    entries.push(BenchEntry {
        name: "lint-smoke",
        unit: "linted plan nodes",
        events: nodes,
        wall_s,
    });

    entries
}

/// Serialize the entries as the `BENCH_fleet.json` document.
pub fn to_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n  \"schema\": \"glp4nn-bench/1\",\n  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"events\": {}, \
             \"wall_s\": {:.6}, \"events_per_s\": {:.1}}}{}\n",
            e.name,
            e.unit,
            e.events,
            e.wall_s,
            e.events_per_s(),
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_wellformed() {
        let entries = vec![
            BenchEntry {
                name: "a",
                unit: "u",
                events: 10,
                wall_s: 2.0,
            },
            BenchEntry {
                name: "b",
                unit: "u",
                events: 0,
                wall_s: 0.0,
            },
        ];
        let json = to_json(&entries);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert_eq!(json.matches("\"name\"").count(), 2);
        assert!(json.contains("\"events_per_s\": 5.0"));
        // Exactly one comma between the two entries, none trailing.
        assert_eq!(json.matches("},\n").count(), 1);
    }
}
