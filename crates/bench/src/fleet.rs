//! The `reproduce fleet` experiment: a multi-replica serving fleet with
//! continuous batching, SLO-aware routing, and autoscaling.
//!
//! The sweep crosses three router policies x two fabrics x two tenant
//! priority mixes. Each fabric runs at a calibrated operating point:
//! the homogeneous 8x P100 fabric at ~93 % of its saturation throughput
//! (where every policy should hold the SLO), and the heterogeneous
//! 12-slot K40C/P100/TitanXP fabric ~6 % *over* its aggregate capacity —
//! the regime where capacity-blind round-robin keeps drowning the K40Cs
//! while load-aware policies ride the fast devices and keep the premium
//! SLO. Everything derives from the simulated clock, so two invocations
//! print byte-identical tables.

use ::fleet::{
    fabric_hetero12, fabric_uniform8, AutoscaleConfig, FleetConfig, FleetReport, FleetSim,
    LoadPhase, PriorityMix, RouterPolicy,
};
use gpu_sim::FabricSpec;
use sanitizer::SanitizeMode;

/// Offered load per fabric (requests per simulated second): just under
/// saturation for the uniform fabric, just over for the heterogeneous
/// one (saturation measured at ~82 k and ~153 k resp.).
pub fn fabric_rate(fabric: &FabricSpec) -> f64 {
    if fabric.name.starts_with("hetero") {
        160_000.0
    } else {
        76_000.0
    }
}

/// Requests per sweep cell. The full grid is 12 cells x 100 k requests
/// = 1.2 M simulated requests.
pub fn cell_requests(smoke: bool) -> usize {
    if smoke {
        2_000
    } else {
        100_000
    }
}

/// The two fabrics swept, in print order.
pub fn fleet_fabrics() -> Vec<FabricSpec> {
    vec![fabric_uniform8(), fabric_hetero12()]
}

/// The two tenant mixes swept, in print order.
pub fn fleet_mixes() -> Vec<PriorityMix> {
    vec![
        PriorityMix::premium_heavy(),
        PriorityMix::besteffort_heavy(),
    ]
}

/// Build the config for one sweep cell. Smoke cells run every replica
/// under the full sanitizer (static plan checks + happens-before replay
/// + the fleet's cross-device check).
pub fn cell_config(
    fabric: FabricSpec,
    policy: RouterPolicy,
    mix: PriorityMix,
    smoke: bool,
) -> FleetConfig {
    let rate = fabric_rate(&fabric);
    let mut cfg = FleetConfig::cifar10(fabric, policy, mix);
    cfg.rate_rps = rate;
    cfg.num_requests = cell_requests(smoke);
    if smoke {
        cfg.engine.sanitize = Some(SanitizeMode::Full);
    }
    cfg
}

/// Run the full grid: fabric x mix x policy, in deterministic order.
pub fn fleet_sweep(smoke: bool) -> Vec<FleetReport> {
    let mut rows = Vec::new();
    for fabric in fleet_fabrics() {
        for mix in fleet_mixes() {
            for policy in RouterPolicy::all() {
                let cfg = cell_config(fabric.clone(), policy, mix.clone(), smoke);
                let mut sim = FleetSim::new(cfg).unwrap_or_else(|e| panic!("{e}"));
                rows.push(sim.run());
            }
        }
    }
    rows
}

/// Whether join-shortest-queue matched or beat round-robin on SLO
/// attainment at every (fabric, mix) sweep point — the payoff of routing
/// on live queue-depth gauges instead of blindly cycling slots.
pub fn jsq_matches_or_beats_rr(rows: &[FleetReport]) -> bool {
    let find = |fabric: &str, mix: &str, policy: &str| {
        rows.iter()
            .find(|r| r.fabric == fabric && r.mix == mix && r.policy == policy)
            .map(|r| r.slo_attainment)
    };
    rows.iter()
        .filter(|r| r.policy == "jsq")
        .all(|jsq| match find(&jsq.fabric, &jsq.mix, "rr") {
            Some(rr) => jsq.slo_attainment >= rr,
            None => false,
        })
}

/// Total sanitizer diagnostics across the sweep (must be zero on the
/// sanitized smoke configuration).
pub fn total_sanitizer_reports(rows: &[FleetReport]) -> usize {
    rows.iter().map(|r| r.sanitizer_reports).sum()
}

/// The autoscaler demonstration: a burst-then-trickle load on the
/// uniform fabric with a 2..=8 replica controller, so the fleet scales
/// up under the burst (fresh spawns pay warmup/plan capture in simulated
/// time) and back down through the trickle.
pub fn autoscale_config(smoke: bool) -> FleetConfig {
    let mut cfg = cell_config(
        fabric_uniform8(),
        RouterPolicy::JoinShortestQueue,
        PriorityMix::premium_heavy(),
        false,
    );
    cfg.autoscale = Some(AutoscaleConfig::new(2, 8));
    let (burst, trickle) = if smoke {
        (4_000, 1_500)
    } else {
        (40_000, 10_000)
    };
    cfg.load_phases = Some(vec![
        LoadPhase {
            num_requests: burst,
            rate_rps: 60_000.0,
        },
        LoadPhase {
            num_requests: trickle,
            rate_rps: 3_000.0,
        },
    ]);
    cfg
}

/// Run the autoscaler demo and return its report.
pub fn autoscale_demo(smoke: bool) -> FleetReport {
    let mut sim = FleetSim::new(autoscale_config(smoke)).unwrap_or_else(|e| panic!("{e}"));
    sim.run()
}

/// Print the sweep as the main policy table plus per-class breakdowns
/// for the heterogeneous premium-heavy cells (where the policies
/// actually separate), and the dominance verification line.
pub fn print_fleet_table(rows: &[FleetReport], smoke: bool) {
    println!("== Fleet: multi-replica serving over the simulated fabric ==");
    println!(
        "(CIFAR10 inference; continuous batching, batch 8 / 2 ms; {} requests/cell{}; \
         uniform8 @ 76k r/s, hetero12 @ 160k r/s)",
        cell_requests(smoke),
        if smoke { "; smoke, sanitized" } else { "" }
    );
    println!("{}", FleetReport::table_header());
    for r in rows {
        println!("{}", r.table_row());
    }
    println!();
    println!("-- per-class breakdown: hetero12-pcie, premium-heavy --");
    for r in rows {
        if r.fabric == "hetero12-pcie" && r.mix == "premium-heavy" {
            println!("[{}]", r.policy);
            println!("{}", FleetReport::class_header());
            for line in r.class_rows() {
                println!("{line}");
            }
        }
    }
    println!(
        "JSQ SLO attainment >= round-robin at all {} (fabric, mix) sweep points: {}",
        rows.iter().filter(|r| r.policy == "jsq").count(),
        if jsq_matches_or_beats_rr(rows) {
            "yes"
        } else {
            "NO"
        }
    );
}

/// Print the autoscaler demo summary.
pub fn print_autoscale_demo(r: &FleetReport) {
    println!("-- autoscaler: burst (60k r/s) then trickle (3k r/s), 2..=8 x P100, JSQ --");
    println!(
        "scale-ups {} (warmup charged: {:.3} ms simulated), scale-downs {}, peak replicas {}",
        r.scale_ups,
        r.warmup_total_ns as f64 / 1e6,
        r.scale_downs,
        r.peak_replicas,
    );
    println!(
        "offered {} completed {} shed {} expired {} | p99 {:.3} ms | SLO attainment {:.2}%",
        r.offered,
        r.completed,
        r.shed,
        r.expired,
        r.p99_ns as f64 / 1e6,
        r.slo_attainment * 100.0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_deterministic_and_jsq_holds() {
        let a = fleet_sweep(true);
        let b = fleet_sweep(true);
        assert_eq!(a, b, "two smoke sweeps must be identical");
        assert_eq!(a.len(), 12, "2 fabrics x 2 mixes x 3 policies");
        assert!(jsq_matches_or_beats_rr(&a));
        assert_eq!(
            total_sanitizer_reports(&a),
            0,
            "sanitized smoke sweep must be clean"
        );
    }

    #[test]
    fn autoscale_demo_scales_both_ways() {
        let r = autoscale_demo(true);
        assert!(r.scale_ups >= 1, "burst must trigger scale-up");
        assert!(r.scale_downs >= 1, "trickle must trigger scale-down");
        assert!(r.warmup_total_ns > 0, "fresh spawns must charge warmup");
        assert!(r.peak_replicas > 2 && r.peak_replicas <= 8);
    }
}
