//! Shared workload builders for the reproduction harness and the
//! criterion benches.
//!
//! Everything here is deterministic; timing numbers come from the
//! simulated device ([`gpu_sim`]), while `T_p`/`T_a` overheads are real
//! measured wall times of our profiler and MILP solver.

pub mod bench_json;
pub mod fleet;
pub mod lint;
pub mod multi_gpu;
pub mod serving;
pub mod trace;

use glp4nn::Phase;
use gpu_sim::DeviceProps;
use nn::layer::Layer;
use nn::layers::conv::{ConvConfig, ConvLayer};
use nn::models;
use nn::{DispatchMode, ExecCtx, LayerTiming, Net};
use tensor::Blob;

/// One convolution layer workload from the paper's Table 5.
#[derive(Debug, Clone, Copy)]
pub struct ConvWorkload {
    /// Network name.
    pub net: &'static str,
    /// Layer name.
    pub layer: &'static str,
    /// Batch size `N`.
    pub batch: usize,
    /// Input channels `C_i`.
    pub ci: usize,
    /// Input spatial extent `H = W`.
    pub hw: usize,
    /// Convolution configuration (`C_o`, `F`, `S`, `P`).
    pub cfg: ConvConfig,
}

/// All 18 Table-5 convolution workloads.
pub fn table5_workloads() -> Vec<ConvWorkload> {
    models::table5_rows()
        .into_iter()
        .map(|(net, layer, n, ci, hw, co, f, s, p)| ConvWorkload {
            net,
            layer,
            batch: n,
            ci,
            hw,
            cfg: ConvConfig {
                num_output: co,
                kernel: f,
                stride: s,
                pad: p,
            },
        })
        .collect()
}

/// The Table-5 workloads belonging to one network.
pub fn workloads_for(net: &str) -> Vec<ConvWorkload> {
    table5_workloads()
        .into_iter()
        .filter(|w| w.net == net)
        .collect()
}

/// Simulated forward time (ns) of one conv layer under a dispatch mode
/// (timing-only: no CPU math).
pub fn conv_forward_ns(dev: DeviceProps, mode: DispatchMode, w: &ConvWorkload) -> u64 {
    let mut ctx = ExecCtx::with_mode(dev, mode).timing_only();
    run_conv_forward(&mut ctx, w)
}

/// Forward one conv layer in an existing context; returns simulated ns.
pub fn run_conv_forward(ctx: &mut ExecCtx, w: &ConvWorkload) -> u64 {
    let mut layer = ConvLayer::new(w.layer, w.cfg, 1);
    let bottom = Blob::nchw(w.batch, w.ci, w.hw, w.hw);
    let mut top = vec![Blob::empty()];
    layer.reshape(&[&bottom], &mut top);
    ctx.take_timings();
    layer.forward(ctx, &[&bottom], &mut top);
    ctx.take_timings()[0].elapsed_ns
}

/// Simulated forward time under GLP4NN after its profiling iteration
/// (steady state). Returns `(profiling_ns, steady_ns, planned_streams)`.
pub fn conv_forward_glp4nn_ns(dev: DeviceProps, w: &ConvWorkload) -> (u64, u64, u32) {
    let mut ctx = ExecCtx::glp4nn(dev).timing_only();
    ctx.net_name = w.net.to_string();
    let mut layer = ConvLayer::new(w.layer, w.cfg, 1);
    let bottom = Blob::nchw(w.batch, w.ci, w.hw, w.hw);
    let mut top = vec![Blob::empty()];
    layer.reshape(&[&bottom], &mut top);
    layer.forward(&mut ctx, &[&bottom], &mut top);
    let profile_ns = ctx.take_timings()[0].elapsed_ns;
    layer.forward(&mut ctx, &[&bottom], &mut top);
    let steady_ns = ctx.take_timings()[0].elapsed_ns;
    // Conv dispatch emits one kernel group per sample, so the plan is
    // cached under chunks == batch.
    let key = glp4nn::LayerKey::forward(w.net, w.layer).with_chunks(w.batch);
    let streams = ctx
        .glp
        .as_ref()
        .and_then(|g| g.plan_for(0, &key))
        .map(|p| p.streams)
        .unwrap_or(1);
    (profile_ns, steady_ns, streams)
}

/// Build the spec for a named network at its Table-5 batch size.
///
/// # Panics
/// Panics on an unknown name; use [`nn::models::spec_by_name`] for a
/// `Result`.
pub fn net_spec(net: &str, seed: u64) -> nn::NetSpec {
    let batch = models::default_batch(net).unwrap_or_else(|e| panic!("{e}"));
    net_spec_with_batch(net, batch, seed)
}

/// Build the spec for a named network at an explicit batch size.
///
/// # Panics
/// Panics on an unknown name; use [`nn::models::spec_by_name`] for a
/// `Result`.
pub fn net_spec_with_batch(net: &str, batch: usize, seed: u64) -> nn::NetSpec {
    models::spec_by_name(net, batch, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// One full training iteration (forward + backward), timing-only.
/// Returns the per-layer timings.
pub fn iteration_timings(ctx: &mut ExecCtx, net: &mut Net) -> Vec<LayerTiming> {
    ctx.take_timings();
    net.forward(ctx);
    net.backward(ctx);
    ctx.take_timings()
}

/// Total simulated ns of a timing list.
pub fn total_ns(timings: &[LayerTiming]) -> u64 {
    timings.iter().map(|t| t.elapsed_ns).sum()
}

/// Per-iteration simulated time of a network under naive dispatch and
/// under GLP4NN steady state. Returns `(naive_ns, glp_steady_ns)`.
pub fn iteration_speedup(dev: DeviceProps, net_name: &str) -> (u64, u64) {
    let spec = net_spec(net_name, 1);
    let naive = {
        let mut ctx = ExecCtx::with_mode(dev.clone(), DispatchMode::Naive).timing_only();
        let mut net = Net::from_spec(&spec);
        total_ns(&iteration_timings(&mut ctx, &mut net))
    };
    let glp = {
        let mut ctx = ExecCtx::glp4nn(dev).timing_only();
        let mut net = Net::from_spec(&spec);
        // Iteration 1 profiles every layer; iteration 2 is steady state.
        iteration_timings(&mut ctx, &mut net);
        total_ns(&iteration_timings(&mut ctx, &mut net))
    };
    (naive, glp)
}

/// Forward-only per-layer times for a net (used by Fig. 9).
pub fn forward_layer_times(dev: DeviceProps, net_name: &str, glp: bool) -> Vec<(String, u64)> {
    let spec = net_spec(net_name, 1);
    let mut ctx = if glp {
        ExecCtx::glp4nn(dev).timing_only()
    } else {
        ExecCtx::with_mode(dev, DispatchMode::Naive).timing_only()
    };
    let mut net = Net::from_spec(&spec);
    net.forward(&mut ctx); // profiling (or plain) pass
    ctx.take_timings();
    net.forward(&mut ctx); // steady state
    ctx.take_timings()
        .into_iter()
        .filter(|t| t.phase == Phase::Forward)
        .map(|t| (t.layer, t.elapsed_ns))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_cover_table5() {
        let all = table5_workloads();
        assert_eq!(all.len(), 18);
        assert_eq!(workloads_for("CaffeNet").len(), 5);
        assert_eq!(workloads_for("GoogLeNet").len(), 6);
    }

    #[test]
    fn conv_timing_is_positive_and_deterministic() {
        let w = workloads_for("CIFAR10")[1];
        let a = conv_forward_ns(DeviceProps::p100(), DispatchMode::Naive, &w);
        let b = conv_forward_ns(DeviceProps::p100(), DispatchMode::Naive, &w);
        assert!(a > 0);
        assert_eq!(a, b);
    }

    #[test]
    fn glp4nn_helper_reports_plan() {
        let w = workloads_for("CIFAR10")[1];
        let (profile, steady, streams) = conv_forward_glp4nn_ns(DeviceProps::k40c(), &w);
        assert!(profile > 0 && steady > 0);
        assert!(streams >= 1);
    }

    #[test]
    fn iteration_speedup_positive() {
        let (naive, glp) = iteration_speedup(DeviceProps::k40c(), "CIFAR10");
        assert!(naive > 0 && glp > 0);
    }
}
