//! Multi-GPU data-parallel scaling sweep: replica count x interconnect x
//! overlap scheduling, over the paper's four networks.
//!
//! All timing is simulated device time. Replicas run with four fixed
//! streams each (the multi-stream dispatch the framework's plans use);
//! gradients ride a simulated ring all-reduce over PCIe- or NVLink-like
//! links. The **weak-scaling** sweep keeps the per-replica batch fixed
//! (global batch grows with the replica count); the **strong-scaling**
//! table splits one fixed global batch across replicas.

use gpu_sim::{DeviceProps, LinkProps};
use nn::{DataParallelTrainer, DispatchMode, SolverConfig, StepReport};
use sanitizer::SanitizeMode;

/// One operating point of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Network name.
    pub net: &'static str,
    /// Interconnect label (`pcie` or `nvlink`).
    pub link: &'static str,
    /// Replica count.
    pub replicas: usize,
    /// Whether communication overlapped backward compute.
    pub overlap: bool,
    /// Per-replica batch size.
    pub batch: usize,
    /// Steady-state step report.
    pub report: StepReport,
    /// Images per simulated second at steady state.
    pub imgs_per_s: f64,
}

fn link_props(label: &str) -> LinkProps {
    match label {
        "nvlink" => LinkProps::nvlink(),
        _ => LinkProps::pcie3(),
    }
}

/// Run `iters` steps (>= 2 so plans are captured once, then replayed) and
/// return the steady-state report of the last one.
fn steady_step(
    net: &'static str,
    batch: usize,
    replicas: usize,
    link: &'static str,
    overlap: bool,
    iters: usize,
) -> StepReport {
    let spec = crate::net_spec_with_batch(net, batch, 1);
    let devices = vec![DeviceProps::p100(); replicas];
    let mut dp = DataParallelTrainer::new(&spec, &devices, false, SolverConfig::default())
        .with_link(link_props(link))
        .with_dispatch(DispatchMode::FixedStreams(4))
        .with_overlap(overlap)
        .timing_only()
        .sanitize(SanitizeMode::Full);
    let mut last = None;
    for _ in 0..iters.max(2) {
        last = Some(dp.step());
    }
    let diags = dp.diagnostics();
    assert!(
        diags.is_empty(),
        "{net}/{link}/R{replicas}/overlap={overlap}: sanitizer reported {} diagnostic(s): {}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
    last.unwrap()
}

/// Per-replica utilization of one representative operating point — the
/// fabric's merged view, not just the slowest device.
pub fn print_utilization(smoke: bool) {
    let replicas = 4;
    let batch = if smoke { 2 } else { 16 };
    let spec = crate::net_spec_with_batch("CIFAR10", batch, 1);
    let devices = vec![DeviceProps::p100(); replicas];
    let mut dp = DataParallelTrainer::new(&spec, &devices, false, SolverConfig::default())
        .with_link(LinkProps::nvlink())
        .with_dispatch(DispatchMode::FixedStreams(4))
        .with_overlap(true)
        .timing_only();
    for _ in 0..2 {
        dp.step();
    }
    println!("-- per-replica utilization (CIFAR10, 4 x P100, NVLink, overlap) --");
    println!(
        "{:>7} {:>12} {:>10} {:>14} {:>12}",
        "replica", "kernels", "busy (ms)", "occupancy", "efficiency"
    );
    for (r, s) in dp.device_stats().iter().enumerate() {
        println!(
            "{:>7} {:>12} {:>10.3} {:>13.1}% {:>11.1}%",
            r,
            s.kernels_completed,
            s.total_kernel_time_ns as f64 / 1e6,
            s.avg_occupancy * 100.0,
            s.parallel_efficiency() * 100.0
        );
    }
    let tl = dp.merged_timeline();
    println!(
        "merged timeline: {} kernels+copies spanning {:.3} ms (gradient copies interleaved with compute)",
        tl.len(),
        tl.span_ns() as f64 / 1e6
    );
}

/// The weak-scaling sweep: per-replica batch fixed, 1/2/4/8 replicas,
/// both links, overlap off and on, four networks.
pub fn multi_gpu_sweep(smoke: bool) -> Vec<ScalingRow> {
    let nets: &[(&'static str, usize)] = if smoke {
        &[
            ("CIFAR10", 2),
            ("Siamese", 2),
            ("CaffeNet", 1),
            ("GoogLeNet", 1),
        ]
    } else {
        &[
            ("CIFAR10", 16),
            ("Siamese", 16),
            ("CaffeNet", 4),
            ("GoogLeNet", 2),
        ]
    };
    let replica_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let iters = 2;
    let mut rows = Vec::new();
    for &(net, batch) in nets {
        for link in ["pcie", "nvlink"] {
            for &replicas in replica_counts {
                for overlap in [false, true] {
                    let report = steady_step(net, batch, replicas, link, overlap, iters);
                    let imgs = (replicas * batch) as f64;
                    rows.push(ScalingRow {
                        net,
                        link,
                        replicas,
                        overlap,
                        batch,
                        report,
                        imgs_per_s: imgs / (report.wall_ns as f64 / 1e9),
                    });
                }
            }
        }
    }
    rows
}

/// Strong scaling: one fixed global batch split across replicas
/// (CIFAR10 only — the divisible-batch constraint rules out the odd
/// per-replica shapes of the bigger nets at every count).
pub fn strong_scaling_sweep(smoke: bool) -> Vec<ScalingRow> {
    let global = if smoke { 8 } else { 32 };
    let replica_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut rows = Vec::new();
    for link in ["pcie", "nvlink"] {
        for &replicas in replica_counts {
            for overlap in [false, true] {
                let batch = global / replicas;
                let report = steady_step("CIFAR10", batch, replicas, link, overlap, 2);
                rows.push(ScalingRow {
                    net: "CIFAR10",
                    link,
                    replicas,
                    overlap,
                    batch,
                    report,
                    imgs_per_s: global as f64 / (report.wall_ns as f64 / 1e9),
                });
            }
        }
    }
    rows
}

/// True iff overlap scheduling is at least as fast as no-overlap at every
/// matching operating point.
pub fn overlap_dominates(rows: &[ScalingRow]) -> bool {
    rows.iter().filter(|r| r.overlap).all(|o| {
        rows.iter()
            .filter(|r| {
                !r.overlap
                    && r.net == o.net
                    && r.link == o.link
                    && r.replicas == o.replicas
                    && r.batch == o.batch
            })
            .all(|e| o.report.wall_ns <= e.report.wall_ns)
    })
}

/// Print one sweep as a table, with weak- or strong-scaling efficiency
/// against the matching 1-replica/no-overlap baseline.
pub fn print_scaling_table(rows: &[ScalingRow], title: &str) {
    println!("-- {title} --");
    println!(
        "{:<10} {:<7} {:>4} {:>8} {:>6} {:>13} {:>11} {:>11} {:>11} {:>9}",
        "net",
        "link",
        "R",
        "overlap",
        "batch",
        "compute (ms)",
        "comm (ms)",
        "wall (ms)",
        "imgs/s",
        "scaling"
    );
    for r in rows {
        let base = rows
            .iter()
            .find(|b| b.net == r.net && b.link == r.link && b.replicas == 1 && !b.overlap)
            .map(|b| b.imgs_per_s)
            .unwrap_or(r.imgs_per_s);
        println!(
            "{:<10} {:<7} {:>4} {:>8} {:>6} {:>13.3} {:>11.3} {:>11.3} {:>11.0} {:>8.2}x",
            r.net,
            r.link,
            r.replicas,
            if r.overlap { "yes" } else { "no" },
            r.batch,
            r.report.compute_ns as f64 / 1e6,
            r.report.comm_ns as f64 / 1e6,
            r.report.wall_ns as f64 / 1e6,
            r.imgs_per_s,
            r.imgs_per_s / base
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_overlap_dominates() {
        let rows = multi_gpu_sweep(true);
        assert!(!rows.is_empty());
        assert!(overlap_dominates(&rows));
    }

    #[test]
    fn nvlink_never_slower_than_pcie() {
        let rows = strong_scaling_sweep(true);
        for nv in rows.iter().filter(|r| r.link == "nvlink") {
            let pcie = rows
                .iter()
                .find(|r| r.link == "pcie" && r.replicas == nv.replicas && r.overlap == nv.overlap)
                .unwrap();
            assert!(nv.report.wall_ns <= pcie.report.wall_ns);
        }
    }
}
