//! Simulator-substrate benchmark: discrete-event throughput of the GPU
//! model under serial and concurrent workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};

fn run_workload(streams: usize, kernels: u32, blocks: u32) -> u64 {
    let mut dev = Device::new(DeviceProps::p100());
    let pool: Vec<_> = (0..streams).map(|_| dev.create_stream()).collect();
    for i in 0..kernels {
        dev.launch(
            pool[i as usize % streams],
            KernelDesc::new(
                "k",
                LaunchConfig::new(Dim3::linear(blocks), Dim3::linear(256), 32, 8192),
                KernelCost::new(4.0e6, 2.0e5),
            )
            .with_tag(i as u64),
        );
    }
    dev.run()
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_engine");
    for (streams, kernels, blocks) in [(1usize, 64u32, 64u32), (8, 64, 64), (8, 256, 16)] {
        let id = format!("{streams}str_{kernels}k_{blocks}b");
        g.throughput(Throughput::Elements(kernels as u64 * blocks as u64));
        g.bench_function(BenchmarkId::from_parameter(id), |b| {
            b.iter(|| run_workload(streams, kernels, blocks))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
