//! Host-side cost of capture-once / replay-many vs per-iteration capture.
//!
//! Both arms dispatch the same CaffeNet conv layer in steady state (after
//! GLP4NN's profiling pass). The `replay` arm reuses the frozen
//! [`glp4nn::ExecPlan`]; the `imperative` arm disables plan reuse, so
//! every iteration rebuilds its kernel groups and re-captures and
//! re-validates the schedule — exactly the work the old per-iteration
//! dispatch loops did. The simulated timelines are identical (see
//! `tests/plan_replay.rs`); the difference here is pure host scheduling
//! overhead.

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use glp4nn::{ExecMode, ExecPlan};
use glp4nn_bench::workloads_for;
use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};
use nn::layer::Layer;
use nn::layers::conv::ConvLayer;
use nn::{DispatchMode, ExecCtx};
use tensor::Blob;

fn bench_plan_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_replay");
    g.sample_size(30);
    let mut w = workloads_for("CaffeNet")[2]; // conv3: 384 small chains
    w.batch = w.batch.min(32);
    for (arm, reuse) in [("replay", true), ("imperative", false)] {
        for (mode_name, mode) in [
            ("naive", DispatchMode::Naive),
            ("streams8", DispatchMode::FixedStreams(8)),
            ("glp4nn", DispatchMode::Glp4nn),
        ] {
            let label = format!("CaffeNet_{}_b{}", w.layer, w.batch);
            g.bench_function(
                BenchmarkId::new(format!("{arm}_{mode_name}"), &label),
                |b| {
                    let mut ctx = match mode {
                        DispatchMode::Glp4nn => ExecCtx::glp4nn(DeviceProps::p100()),
                        m => ExecCtx::with_mode(DeviceProps::p100(), m),
                    }
                    .timing_only();
                    if !reuse {
                        ctx = ctx.without_plan_reuse();
                    }
                    ctx.net_name = w.net.to_string();
                    ctx.batch = w.batch;
                    let mut layer = ConvLayer::new(w.layer, w.cfg, 1);
                    let bottom = Blob::nchw(w.batch, w.ci, w.hw, w.hw);
                    let mut top = vec![Blob::empty()];
                    layer.reshape(&[&bottom], &mut top);
                    // Warm: profiling pass (GLP4NN) + first capture.
                    layer.forward(&mut ctx, &[&bottom], &mut top);
                    layer.forward(&mut ctx, &[&bottom], &mut top);
                    // Inner loop of 10 steadies the offline criterion shim's
                    // small fixed sample count; reported time is per 10
                    // steady-state forwards.
                    b.iter(|| {
                        for _ in 0..10 {
                            layer.forward(&mut ctx, &[&bottom], &mut top);
                            ctx.take_timings();
                        }
                    });
                },
            );
        }
    }
    g.finish();
}

/// The host work replay skips, in isolation: building a layer's kernel
/// groups and capturing + freezing them into an ExecPlan, versus one
/// plan-cache lookup (HashMap get + Arc clone). Neither arm touches the
/// simulated device, so this is the pure per-iteration scheduling cost.
fn bench_capture_vs_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_capture");
    g.sample_size(30);
    let make_groups = || -> Vec<Vec<KernelDesc>> {
        (0..64u64)
            .map(|i| {
                (0..3)
                    .map(|k| {
                        KernelDesc::new(
                            &format!("conv_k{k}"),
                            LaunchConfig::new(Dim3::linear(24), Dim3::linear(256), 32, 4096),
                            KernelCost::new(2.0e5 * (k as f64 + 1.0), 5.0e4),
                        )
                        .with_tag(i)
                    })
                    .collect()
            })
            .collect()
    };
    let mut dev = Device::new(DeviceProps::p100());
    let pool: Vec<_> = (0..8).map(|_| dev.create_stream()).collect();
    let mode = ExecMode::Concurrent { streams: 8 };
    g.bench_function("capture_64x3", |b| {
        b.iter(|| {
            let groups = make_groups();
            black_box(ExecPlan::capture_round_robin("bench", &groups, &pool, mode))
        });
    });
    let mut cache: HashMap<String, Arc<ExecPlan>> = HashMap::new();
    cache.insert(
        "net/conv3/fwd/b32/c64/p8".to_string(),
        Arc::new(ExecPlan::capture_round_robin(
            "bench",
            &make_groups(),
            &pool,
            mode,
        )),
    );
    g.bench_function("lookup_64x3", |b| {
        b.iter(|| {
            let plan = cache.get(black_box("net/conv3/fwd/b32/c64/p8")).unwrap();
            black_box(Arc::clone(plan))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_plan_replay, bench_capture_vs_lookup);
criterion_main!(benches);
