//! Substrate benchmark: the blocked SGEMM every convolution and
//! fully-connected layer bottoms out in (our cuBLAS stand-in).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tensor::gemm::{sgemm, Transpose};

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("sgemm");
    // Shapes drawn from the paper's Table 5 per-sample GEMMs:
    // (Co, OH*OW, Ci*F*F).
    let shapes = [
        ("cifar_conv1", 32usize, 1024usize, 75usize),
        ("siamese_conv2", 50, 64, 500),
        ("caffenet_conv3", 384, 169, 2304),
        ("googlenet_conv3", 384, 49, 832),
    ];
    for (name, m, n, k) in shapes {
        let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.1).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.2).collect();
        let mut out = vec![0.0f32; m * n];
        g.throughput(Throughput::Elements((2 * m * n * k) as u64));
        g.bench_function(BenchmarkId::from_parameter(name), |bencher| {
            bencher.iter(|| {
                sgemm(
                    Transpose::No,
                    Transpose::No,
                    m,
                    n,
                    k,
                    1.0,
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                    0.0,
                    &mut out,
                );
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
