//! `T_p` benchmark (Table 6 / Fig. 10): real wall time of the compact
//! resource tracker — activity serialization, buffering, and parsing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cupti_sim::Profiler;
use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};

fn device_with_kernels(n: u32) -> Device {
    let mut dev = Device::new(DeviceProps::p100());
    let s = dev.create_stream();
    for i in 0..n {
        dev.launch(
            s,
            KernelDesc::new(
                if i % 2 == 0 { "im2col" } else { "sgemm" },
                LaunchConfig::new(Dim3::linear(16), Dim3::linear(128), 33, 4096),
                KernelCost::new(1.0e5, 1.0e4),
            )
            .with_tag(i as u64),
        );
    }
    dev.run();
    dev
}

fn bench_profiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("resource_tracker_t_p");
    for kernels in [48u32, 256, 1024] {
        let dev = device_with_kernels(kernels);
        g.throughput(Throughput::Elements(kernels as u64));
        g.bench_function(BenchmarkId::new("ingest_flush", kernels), |b| {
            b.iter(|| {
                let mut p = Profiler::new();
                p.enable();
                p.ingest(std::hint::black_box(dev.trace()));
                p.flush()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_profiler);
criterion_main!(benches);
