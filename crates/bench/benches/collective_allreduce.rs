//! Collective-layer benchmark: host-side cost of simulating a ring
//! all-reduce (copy chains + fold kernels + fabric event loop) across
//! ring sizes, bucket sizes and link generations.

use collective::{Bucket, RingComm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::{Device, DeviceProps, Fabric, LinkProps};

fn run_all_reduce(replicas: usize, bytes: u64, link: LinkProps) -> u64 {
    let mut devices: Vec<Device> = (0..replicas)
        .map(|_| Device::new(DeviceProps::p100()))
        .collect();
    let mut fabric = Fabric::ring(replicas, link);
    let mut devs: Vec<&mut Device> = devices.iter_mut().collect();
    let mut comm = RingComm::new(&mut devs);
    let bucket = Bucket::new("grad", bytes);
    let rep = comm
        .all_reduce(&mut fabric, &mut devs, &bucket)
        .expect("ring all-reduce on a complete ring cannot fail");
    fabric.run(&mut devs);
    rep.bytes_on_wire
}

fn bench_all_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("collective_allreduce");
    for (replicas, kb, link_name) in [
        (2usize, 256u64, "pcie"),
        (4, 256, "pcie"),
        (8, 256, "pcie"),
        (8, 4096, "pcie"),
        (8, 4096, "nvlink"),
    ] {
        let bytes = kb * 1024;
        let link = if link_name == "nvlink" {
            LinkProps::nvlink()
        } else {
            LinkProps::pcie3()
        };
        g.throughput(Throughput::Bytes(bytes));
        g.bench_function(
            BenchmarkId::from_parameter(format!("{replicas}gpu_{kb}KB_{link_name}")),
            |b| b.iter(|| run_all_reduce(replicas, bytes, link)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_all_reduce);
criterion_main!(benches);
