//! Whole-iteration benchmark (Fig. 7 / Fig. 11 harness cost): a full
//! forward+backward pass of each evaluation network, timing-only, plus a
//! real compute step of the small CIFAR10 network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glp4nn_bench::{iteration_timings, net_spec_with_batch, total_ns};
use gpu_sim::DeviceProps;
use nn::data::SyntheticDataset;
use nn::{DispatchMode, ExecCtx, Net, Solver, SolverConfig};
use tensor::Blob;

fn bench_iterations(c: &mut Criterion) {
    let mut g = c.benchmark_group("training_iteration_timing_only");
    g.sample_size(10);
    for (net_name, batch) in [("CIFAR10", 32usize), ("Siamese", 16), ("GoogLeNet", 8)] {
        let spec = net_spec_with_batch(net_name, batch, 1);
        g.bench_function(BenchmarkId::new("naive", net_name), |b| {
            b.iter(|| {
                let mut ctx =
                    ExecCtx::with_mode(DeviceProps::p100(), DispatchMode::Naive).timing_only();
                let mut net = Net::from_spec(&spec);
                total_ns(&iteration_timings(&mut ctx, &mut net))
            })
        });
        g.bench_function(BenchmarkId::new("glp4nn_steady", net_name), |b| {
            b.iter(|| {
                let mut ctx = ExecCtx::glp4nn(DeviceProps::p100()).timing_only();
                let mut net = Net::from_spec(&spec);
                iteration_timings(&mut ctx, &mut net); // profile
                total_ns(&iteration_timings(&mut ctx, &mut net))
            })
        });
    }
    g.finish();

    // Real-math solver step (the Fig. 11 workload at reduced batch).
    let mut g = c.benchmark_group("training_iteration_real_math");
    g.sample_size(10);
    g.bench_function("cifar10_batch16_sgd_step", |b| {
        let ds = SyntheticDataset::cifar_like(42);
        b.iter(|| {
            let mut ctx = ExecCtx::naive(DeviceProps::p100());
            let net = Net::from_spec(&net_spec_with_batch("CIFAR10", 16, 42));
            let mut solver = Solver::new(net, SolverConfig::default());
            let mut data = std::mem::replace(solver.net.blob_mut("data"), Blob::empty());
            let mut label = std::mem::replace(solver.net.blob_mut("label"), Blob::empty());
            ds.fill_batch(0, &mut data, &mut label);
            *solver.net.blob_mut("data") = data;
            *solver.net.blob_mut("label") = label;
            solver.step(&mut ctx)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_iterations);
criterion_main!(benches);
