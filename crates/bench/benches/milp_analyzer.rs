//! `T_a` benchmark (Table 6): real wall time of the kernel analyzer's MILP
//! solve — the GLPK-substitute path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glp4nn::analyzer::{analyze_profiles, KernelProfile};
use gpu_sim::DeviceProps;
use milp::{Model, Sense, VarKind};

fn profiles(classes: usize) -> Vec<KernelProfile> {
    (0..classes)
        .map(|i| KernelProfile {
            name: format!("k{i}"),
            grid_blocks: 12 + 7 * i as u64,
            threads_per_block: 128 << (i % 3),
            regs_per_thread: 32,
            smem_per_block: if i % 2 == 0 { 8192 } else { 0 },
            avg_duration_ns: 20_000 + 11_000 * i as u64,
            instances: 64,
        })
        .collect()
}

fn bench_analyzer(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyzer_t_a");
    for classes in [1usize, 3, 6] {
        let p = profiles(classes);
        for dev in [DeviceProps::k40c(), DeviceProps::p100()] {
            let id = format!("{}_{}classes", dev.name.replace(' ', "_"), classes);
            g.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| analyze_profiles(std::hint::black_box(&dev), std::hint::black_box(&p)))
            });
        }
    }
    g.finish();

    // Raw MILP solver on the paper-shaped bounded knapsack.
    c.bench_function("milp_solve_knapsack", |b| {
        b.iter(|| {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..6)
                .map(|i| {
                    m.add_var(
                        &format!("x{i}"),
                        VarKind::Integer,
                        0.0,
                        8.0,
                        (100 * (i + 1)) as f64,
                    )
                })
                .collect();
            let terms: Vec<_> = vars.iter().map(|&v| (v, 256.0)).collect();
            m.add_le_constraint("threads", &terms, 2048.0);
            let conc: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            m.add_le_constraint("conc", &conc, 32.0);
            m.add_ge_constraint("lo", &conc, 1.0);
            milp::solve(std::hint::black_box(&m)).unwrap()
        })
    });
}

criterion_group!(benches, bench_analyzer);
criterion_main!(benches);
