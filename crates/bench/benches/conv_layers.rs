//! Per-layer dispatch benchmark (the harness cost behind Figs. 2, 4, 8,
//! 9): simulated execution of Table-5 conv layers under naive,
//! fixed-stream and GLP4NN dispatch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glp4nn_bench::{conv_forward_glp4nn_ns, conv_forward_ns, workloads_for};
use gpu_sim::DeviceProps;
use nn::DispatchMode;

fn bench_conv_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv_dispatch");
    g.sample_size(20);
    // One representative layer per network; small batches keep criterion
    // iterations fast while preserving per-sample kernel shapes.
    let mut picks = vec![
        workloads_for("CIFAR10")[1],
        workloads_for("Siamese")[1],
        workloads_for("CaffeNet")[2],
        workloads_for("GoogLeNet")[0],
    ];
    for w in &mut picks {
        w.batch = w.batch.min(32);
    }
    for w in picks {
        let label = format!("{}_{}", w.net, w.layer);
        g.bench_function(BenchmarkId::new("naive", &label), |b| {
            b.iter(|| conv_forward_ns(DeviceProps::p100(), DispatchMode::Naive, &w))
        });
        g.bench_function(BenchmarkId::new("streams8", &label), |b| {
            b.iter(|| conv_forward_ns(DeviceProps::p100(), DispatchMode::FixedStreams(8), &w))
        });
        g.bench_function(BenchmarkId::new("glp4nn", &label), |b| {
            b.iter(|| conv_forward_glp4nn_ns(DeviceProps::p100(), &w))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_conv_dispatch);
criterion_main!(benches);
