//! Stream tuning: how many concurrent streams should a layer use?
//!
//! Sweeps fixed stream counts for a convolution layer on each simulated
//! GPU (the manual experiment behind the paper's Figs. 2 and 4) and
//! compares the best observed count with the one GLP4NN's analytical
//! model picks automatically — the whole point of the framework: "it is
//! hard for users to set the number of streams for various GPUs"
//! (Observation 2).
//!
//! ```sh
//! cargo run --release --example stream_tuning [net] [layer_index]
//! ```

use glp4nn_bench::{conv_forward_glp4nn_ns, conv_forward_ns, workloads_for};
use gpu_sim::DeviceProps;
use nn::DispatchMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let net = args.first().map(String::as_str).unwrap_or("CaffeNet");
    let idx: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(2);
    let workloads = workloads_for(net);
    let w = workloads
        .get(idx)
        .unwrap_or_else(|| panic!("{net} has only {} conv layers", workloads.len()));

    println!(
        "layer {}/{}: Ci={} H/W={} Co={} F={} S={} P={}, batch {}\n",
        w.net,
        w.layer,
        w.ci,
        w.hw,
        w.cfg.num_output,
        w.cfg.kernel,
        w.cfg.stride,
        w.cfg.pad,
        w.batch
    );
    let sweep = [1u32, 2, 3, 4, 6, 8, 12, 16, 24, 32];
    for dev in DeviceProps::evaluation_set() {
        let base = conv_forward_ns(dev.clone(), DispatchMode::Naive, w) as f64;
        print!("{:<12}", dev.name);
        let mut best = (1u32, 1.0f64);
        for &s in &sweep {
            let t = if s == 1 {
                base
            } else {
                conv_forward_ns(dev.clone(), DispatchMode::FixedStreams(s), w) as f64
            };
            let speedup = base / t;
            if speedup > best.1 {
                best = (s, speedup);
            }
            print!(" {s}:{speedup:.2}");
        }
        let (_, _, model_streams) = conv_forward_glp4nn_ns(dev.clone(), w);
        let model_t = {
            // Steady-state GLP4NN time for the model's own choice.
            let (_, steady, _) = conv_forward_glp4nn_ns(dev, w);
            base / steady as f64
        };
        println!();
        println!(
            "{:<12} best observed: {} streams ({:.2}x) | model picked: {} streams ({:.2}x)",
            "", best.0, best.1, model_streams, model_t
        );
    }
}
