//! Multi-GPU deployment (paper §3.1): one GLP4NN instance manages several
//! GPUs — a shared resource tracker and stream manager, with a private
//! kernel analyzer and runtime scheduler per device — and each device gets
//! its own concurrency plan for the same layer.
//!
//! ```sh
//! cargo run --release --example multi_gpu
//! ```

use glp4nn::{ExecMode, Glp4nn, LayerKey};
use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};

/// A CaffeNet-conv3-shaped per-sample kernel chain.
fn groups(samples: u64) -> Vec<Vec<KernelDesc>> {
    (0..samples)
        .map(|i| {
            vec![
                KernelDesc::new(
                    "im2col",
                    LaunchConfig::new(Dim3::linear(339), Dim3::linear(128), 33, 0),
                    KernelCost::new(2.3e4, 1.4e4),
                )
                .with_tag(i),
                KernelDesc::new(
                    "sgemm",
                    LaunchConfig::new(Dim3::plane(6, 3), Dim3::linear(256), 64, 16384),
                    KernelCost::new(1.9e7, 1.2e6),
                )
                .with_tag(i),
            ]
        })
        .collect()
}

fn main() {
    let props = [
        DeviceProps::k40c(),
        DeviceProps::p100(),
        DeviceProps::titan_xp(),
    ];
    let mut glp = Glp4nn::new(props.len());
    let mut devices: Vec<Device> = props.iter().cloned().map(Device::new).collect();
    for (i, d) in devices.iter().enumerate() {
        glp.register_device(i, d.props());
    }
    let key = LayerKey::forward("demo", "conv3");

    println!(
        "one GLP4NN framework, {} GPUs, same conv3-shaped layer\n",
        props.len()
    );
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>14}",
        "GPU", "profile(ms)", "steady(ms)", "speedup", "plan (streams)"
    );
    for (i, dev) in devices.iter_mut().enumerate() {
        let r1 = glp.execute(dev, i, &key, groups(32));
        assert_eq!(r1.mode, ExecMode::Profiling);
        let r2 = glp.execute(dev, i, &key, groups(32));
        let streams = match r2.mode {
            ExecMode::Concurrent { streams } => streams,
            _ => unreachable!("plan must exist after profiling"),
        };
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>9.2} {:>14}",
            dev.props().name,
            r1.elapsed_ns as f64 / 1e6,
            r2.elapsed_ns as f64 / 1e6,
            r1.elapsed_ns as f64 / r2.elapsed_ns as f64,
            streams
        );
    }
    println!("\nper-GPU overheads (shared tracker keeps separate books):");
    for i in 0..devices.len() {
        let c = glp.cost_report(i);
        println!(
            "  gpu{}: {} kernels profiled, T_p {:.3} ms, T_a {:.3} ms, mem_total {:.1} KB",
            i,
            c.kernels_recorded,
            c.t_p.as_secs_f64() * 1e3,
            c.t_a.as_secs_f64() * 1e3,
            c.mem_total_bytes() as f64 / 1024.0
        );
    }
}
