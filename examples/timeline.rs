//! Kernel timelines (paper Fig. 3): visualize how GLP4NN's concurrent
//! streams overlap the per-sample kernel chains of a convolution layer.
//!
//! ```sh
//! cargo run --release --example timeline -- [net] [layer_index] [samples]
//! ```

use glp4nn_bench::{run_conv_forward, workloads_for};
use gpu_sim::{DeviceProps, Timeline};
use nn::{DispatchMode, ExecCtx};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let net = args.first().map(String::as_str).unwrap_or("CaffeNet");
    let idx: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(2);
    let samples: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(8);

    let mut w = workloads_for(net)[idx];
    w.batch = samples;
    println!(
        "{} {} with {} samples on a simulated K40C\n(i = im2col, s = sgemm, g = gemmk/bias)\n",
        w.net, w.layer, samples
    );

    for streams in [1u32, 2, 4, 8] {
        let mode = if streams == 1 {
            DispatchMode::Naive
        } else {
            DispatchMode::FixedStreams(streams)
        };
        let mut ctx = ExecCtx::with_mode(DeviceProps::k40c(), mode).timing_only();
        let elapsed = run_conv_forward(&mut ctx, &w);
        let tl = Timeline::new(ctx.device.trace());
        println!(
            "== {streams} stream(s): layer time {:.3} ms ==",
            elapsed as f64 / 1e6
        );
        print!("{}", tl.render_ascii(110));
        println!();
    }
    println!("CSV of the 4-stream run is available via Timeline::render_csv in the library API.");
}
