//! Distributed (multi-GPU) data-parallel training — the paper's §6
//! "distributed implementation" future work, layered on top of single-GPU
//! GLP4NN acceleration.
//!
//! Trains CIFAR10-quick on 1, 2 and 4 simulated P100s with synchronous
//! gradient averaging and reports simulated compute/communication times
//! and scaling efficiency.
//!
//! ```sh
//! cargo run --release --example data_parallel -- [iters] [global_batch]
//! ```

use gpu_sim::DeviceProps;
use nn::data::SyntheticDataset;
use nn::models;
use nn::{DataParallelTrainer, Net, SolverConfig};
use tensor::Blob;

fn fill(net: &mut Net, ds: &SyntheticDataset, start: usize) {
    let mut data = std::mem::replace(net.blob_mut("data"), Blob::empty());
    let mut label = std::mem::replace(net.blob_mut("label"), Blob::empty());
    ds.fill_batch(start, &mut data, &mut label);
    *net.blob_mut("data") = data;
    *net.blob_mut("label") = label;
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: usize = args.first().and_then(|v| v.parse().ok()).unwrap_or(4);
    let global_batch: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(32);
    let ds = SyntheticDataset::cifar_like(17);

    println!(
        "CIFAR10-quick, global batch {global_batch}, {iters} iterations, GLP4NN on every replica\n"
    );
    println!(
        "{:>5} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "GPUs", "last loss", "compute (ms)", "comm (ms)", "step (ms)", "scaling"
    );

    let mut baseline_ms = None;
    for gpus in [1usize, 2, 4] {
        assert_eq!(global_batch % gpus, 0, "batch must divide evenly");
        let per_gpu = global_batch / gpus;
        let spec = models::cifar10_quick(per_gpu, 7);
        let devices = vec![DeviceProps::p100(); gpus];
        let mut dp = DataParallelTrainer::new(&spec, &devices, true, SolverConfig::default());

        let mut last = None;
        for it in 0..iters {
            for r in 0..gpus {
                fill(dp.replica_net(r), &ds, it * global_batch + r * per_gpu);
            }
            last = Some(dp.step());
        }
        let rep = last.unwrap();
        let step_ms = rep.total_ns() as f64 / 1e6;
        let scaling = baseline_ms.map(|b: f64| b / step_ms).unwrap_or(1.0);
        if baseline_ms.is_none() {
            baseline_ms = Some(step_ms);
        }
        println!(
            "{:>5} {:>12.4} {:>14.3} {:>12.3} {:>12.3} {:>9.2}x",
            gpus,
            rep.loss,
            rep.compute_ns as f64 / 1e6,
            rep.comm_ns as f64 / 1e6,
            step_ms,
            scaling
        );
    }
    println!("\nscaling = step-time speedup over 1 GPU at fixed global batch;");
    println!("communication is a simulated ring all-reduce of per-layer gradient");
    println!("buckets over a PCIe-like fabric (see `reproduce multi-gpu` for the");
    println!("full interconnect x overlap sweep).");
}
