//! Convergence invariance (paper Fig. 11 and §3.3.1).
//!
//! Trains the CIFAR10-quick network on synthetic CIFAR-shaped data with
//! and without GLP4NN and prints both loss curves. The reproduction is
//! *stronger* than the paper's figure: because GLP4NN only re-schedules
//! kernel launches (and this repo's CPU math is shared code with fixed
//! reduction orders), the curves are **bitwise identical**, not merely
//! statistically similar.
//!
//! ```sh
//! cargo run --release --example convergence -- [iterations] [batch]
//! ```

use gpu_sim::DeviceProps;
use nn::data::SyntheticDataset;
use nn::models;
use nn::{ExecCtx, Net, Solver, SolverConfig};
use tensor::Blob;

fn run(glp: bool, iters: usize, batch: usize) -> Vec<f32> {
    let mut ctx = if glp {
        ExecCtx::glp4nn(DeviceProps::p100())
    } else {
        ExecCtx::naive(DeviceProps::p100())
    };
    let net = Net::from_spec(&models::cifar10_quick(batch, 42));
    let mut solver = Solver::new(net, SolverConfig::default());
    let ds = SyntheticDataset::cifar_like(42);
    (0..iters)
        .map(|it| {
            let mut data = std::mem::replace(solver.net.blob_mut("data"), Blob::empty());
            let mut label = std::mem::replace(solver.net.blob_mut("label"), Blob::empty());
            ds.fill_batch(it * batch, &mut data, &mut label);
            *solver.net.blob_mut("data") = data;
            *solver.net.blob_mut("label") = label;
            solver.step(&mut ctx)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: usize = args.first().and_then(|v| v.parse().ok()).unwrap_or(30);
    let batch: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(32);

    println!("CIFAR10-quick, batch {batch}, {iters} iterations, simulated P100\n");
    let naive = run(false, iters, batch);
    let glp = run(true, iters, batch);

    // Sparkline-ish textual curve.
    let max = naive.iter().cloned().fold(f32::MIN, f32::max);
    println!(
        "{:<6} {:>10} {:>10}  loss curve (naive)",
        "iter", "naive", "glp4nn"
    );
    for (i, (a, b)) in naive.iter().zip(&glp).enumerate() {
        let bar = "#".repeat(((a / max) * 50.0) as usize);
        println!("{i:<6} {a:>10.6} {b:>10.6}  |{bar}");
    }
    let identical = naive
        .iter()
        .zip(&glp)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("\nbitwise identical loss curves: {identical}");
    println!(
        "loss: {:.4} -> {:.4} ({} iterations)",
        naive[0],
        naive[iters - 1],
        iters
    );
    assert!(identical);
}
