//! Serve CIFAR10 inference with dynamic batching over the GLP4NN runtime.
//!
//! ```text
//! cargo run --release -p glp4nn-bench --example serving
//! ```
//!
//! Requests arrive as a seeded Poisson process in simulated time; the
//! batcher fires on a size-8 or 2 ms-delay trigger; each batch runs an
//! inference-only forward pass. Comparing naive dispatch against GLP4NN
//! shows the cached per-batch-shape concurrency plans paying off in both
//! throughput and tail latency.

use gpu_sim::DeviceProps;
use nn::DispatchMode;
use serve::{run_serving, BatchPolicy, ServeConfig};

fn main() {
    let cfg = |mode: DispatchMode| ServeConfig {
        device: DeviceProps::p100(),
        mode,
        model: "CIFAR10".to_string(),
        rate_rps: 6000.0,
        num_requests: 300,
        policy: BatchPolicy::new(8, 2_000_000),
        queue_capacity: 1024,
        seed: 42,
    };

    println!("serving CIFAR10 on Tesla P100, 6000 req/s, batch <= 8 or 2 ms");
    println!(
        "{:<8} {:>11} {:>9} {:>9} {:>9} {:>7}",
        "mode", "tput(r/s)", "p50(ms)", "p95(ms)", "p99(ms)", "batch"
    );
    for (name, mode) in [
        ("naive", DispatchMode::Naive),
        ("glp4nn", DispatchMode::Glp4nn),
    ] {
        let r = run_serving(&cfg(mode)).unwrap();
        println!(
            "{:<8} {:>11.1} {:>9.3} {:>9.3} {:>9.3} {:>7.2}",
            name,
            r.throughput_rps,
            r.latency.p50_ns as f64 / 1e6,
            r.latency.p95_ns as f64 / 1e6,
            r.latency.p99_ns as f64 / 1e6,
            r.mean_batch
        );
    }
}
