//! Quickstart: accelerate a small CNN's training with GLP4NN.
//!
//! Builds the paper's CIFAR10-quick network, trains a few iterations on
//! synthetic CIFAR-shaped data twice — once with original-Caffe-style
//! serial kernel dispatch, once through the GLP4NN framework — and shows
//! that (a) the losses are bitwise identical (convergence invariance) and
//! (b) the simulated GPU time drops once GLP4NN's profile-then-parallelize
//! workflow kicks in.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpu_sim::DeviceProps;
use nn::data::SyntheticDataset;
use nn::models;
use nn::{ExecCtx, Net, Solver, SolverConfig};
use tensor::Blob;

fn train(mut ctx: ExecCtx, iters: usize, batch: usize) -> (Vec<f32>, Vec<u64>) {
    let net = Net::from_spec(&models::cifar10_quick(batch, 42));
    let mut solver = Solver::new(net, SolverConfig::default());
    let ds = SyntheticDataset::cifar_like(42);
    let mut losses = Vec::new();
    let mut times = Vec::new();
    for it in 0..iters {
        let mut data = std::mem::replace(solver.net.blob_mut("data"), Blob::empty());
        let mut label = std::mem::replace(solver.net.blob_mut("label"), Blob::empty());
        ds.fill_batch(it * batch, &mut data, &mut label);
        *solver.net.blob_mut("data") = data;
        *solver.net.blob_mut("label") = label;
        ctx.take_timings();
        losses.push(solver.step(&mut ctx));
        times.push(ctx.take_timings().iter().map(|t| t.elapsed_ns).sum());
    }
    (losses, times)
}

fn main() {
    let iters = 4;
    let batch = 16;
    println!("training CIFAR10-quick for {iters} iterations (batch {batch}) on a simulated P100\n");

    let (naive_loss, naive_time) = train(ExecCtx::naive(DeviceProps::p100()), iters, batch);
    let (glp_loss, glp_time) = train(ExecCtx::glp4nn(DeviceProps::p100()), iters, batch);

    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "iter", "loss(caffe)", "loss(glp4nn)", "t_sim caffe", "t_sim glp4nn", "speedup"
    );
    for i in 0..iters {
        println!(
            "{:<6} {:>12.6} {:>12.6} {:>9.3} ms {:>9.3} ms {:>9.2}",
            i,
            naive_loss[i],
            glp_loss[i],
            naive_time[i] as f64 / 1e6,
            glp_time[i] as f64 / 1e6,
            naive_time[i] as f64 / glp_time[i] as f64,
        );
    }
    let identical = naive_loss
        .iter()
        .zip(&glp_loss)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("\nconvergence-invariant (losses bitwise identical): {identical}");
    println!("note: iteration 0 under GLP4NN is the one-time profiling run (Fig. 6 workflow);");
    println!("      the speedup appears from iteration 1 onward.");
    assert!(identical, "GLP4NN must not change the math");
}
