//! Train-then-deploy: checkpointing and inference mode.
//!
//! Trains the CIFAR10-quick network briefly under GLP4NN, snapshots the
//! parameters with `Net::state_dict`, loads them into a *fresh* network,
//! switches it to inference mode (`set_train(false)` — dropout off) and
//! measures top-1 accuracy on held-out synthetic test samples. Accuracy
//! well above the 10% chance level demonstrates that the training loop —
//! the thing GLP4NN accelerates without altering — actually learns.
//!
//! ```sh
//! cargo run --release --example inference -- [train_iters]
//! ```

use gpu_sim::DeviceProps;
use nn::data::SyntheticDataset;
use nn::models;
use nn::{ExecCtx, Net, Solver, SolverConfig};
use tensor::math::argmax;
use tensor::Blob;

const TEST_OFFSET: usize = 10_000_000;

fn fill(net: &mut Net, ds: &SyntheticDataset, start: usize) {
    let mut data = std::mem::replace(net.blob_mut("data"), Blob::empty());
    let mut label = std::mem::replace(net.blob_mut("label"), Blob::empty());
    ds.fill_batch(start, &mut data, &mut label);
    *net.blob_mut("data") = data;
    *net.blob_mut("label") = label;
}

fn accuracy(
    net: &mut Net,
    ctx: &mut ExecCtx,
    ds: &SyntheticDataset,
    batches: usize,
    batch: usize,
) -> f32 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for b in 0..batches {
        fill(net, ds, TEST_OFFSET + b * batch);
        net.forward(ctx);
        let scores = net.blob("ip2_o");
        let labels = net.blob("label");
        let classes = scores.count() / scores.num();
        for i in 0..scores.num() {
            let row = &scores.data()[i * classes..(i + 1) * classes];
            if argmax(row) == labels.data()[i] as usize {
                correct += 1;
            }
            total += 1;
        }
    }
    correct as f32 / total as f32
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let batch = 50;
    let ds = SyntheticDataset::cifar_like(42);
    let mut ctx = ExecCtx::glp4nn(DeviceProps::p100());

    // Baseline: untrained network.
    let mut fresh = Net::from_spec(&models::cifar10_quick(batch, 42));
    let acc0 = accuracy(&mut fresh, &mut ctx, &ds, 4, batch);

    // Train.
    println!("training CIFAR10-quick for {iters} iterations under GLP4NN ...");
    let net = Net::from_spec(&models::cifar10_quick(batch, 42));
    let mut solver = Solver::new(net, SolverConfig::default());
    for it in 0..iters {
        fill(&mut solver.net, &ds, it * batch);
        let loss = solver.step(&mut ctx);
        if it % (iters / 8).max(1) == 0 {
            println!("  iter {it:>4}: loss {loss:.4}");
        }
    }

    // Checkpoint and deploy into a fresh net.
    let ckpt = solver.net.state_dict();
    let mut deployed = Net::from_spec(&models::cifar10_quick(batch, 42));
    fill(&mut deployed, &ds, 0);
    deployed.forward(&mut ctx); // materialize lazily-initialized params
    deployed.load_state_dict(&ckpt);
    deployed.set_train(false);

    let acc1 = accuracy(&mut deployed, &mut ctx, &ds, 4, batch);
    println!("\ntop-1 accuracy on held-out test samples (10 classes, chance = 10%):");
    println!("  untrained: {:.1}%", acc0 * 100.0);
    println!("  trained:   {:.1}%", acc1 * 100.0);
    assert!(
        acc1 > acc0 + 0.1,
        "training must beat the untrained baseline"
    );
    println!("\ncheckpoint round-trip + inference mode verified.");
}
