//! Network-agnosticism (paper §3.3.1): GLP4NN "does not rely on any
//! particular data layout nor any specialized and highly optimized
//! libraries for neural layers" — it works on whatever network you
//! define, because it operates on kernel launches, not layer semantics.
//!
//! This example builds a network that appears nowhere in the paper — a
//! small VGG-style stack with an inception-like split — straight from a
//! `NetSpec`, trains it with and without GLP4NN, and shows the framework
//! profiles and accelerates it with no network-specific code.
//!
//! ```sh
//! cargo run --release --example custom_net
//! ```

use gpu_sim::DeviceProps;
use nn::data::SyntheticDataset;
use nn::net::{LayerKind, LayerSpec, NetSpec};
use nn::{ExecCtx, Net, Solver, SolverConfig};
use tensor::Blob;

fn layer(name: &str, kind: LayerKind, bottoms: &[&str], tops: &[&str]) -> LayerSpec {
    LayerSpec {
        name: name.into(),
        kind,
        bottoms: bottoms.iter().map(|s| s.to_string()).collect(),
        tops: tops.iter().map(|s| s.to_string()).collect(),
    }
}

fn my_net(batch: usize) -> NetSpec {
    use LayerKind::*;
    NetSpec {
        name: "MyCustomNet".into(),
        inputs: vec![
            ("data".into(), vec![batch, 3, 24, 24]),
            ("label".into(), vec![batch]),
        ],
        layers: vec![
            layer(
                "stem",
                Convolution {
                    num_output: 24,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                &["data"],
                &["stem_o"],
            ),
            layer("stem_relu", Relu, &["stem_o"], &["stem_r"]),
            // Fan out to two parallel branches via an explicit split
            // (gradients from both branches accumulate), joined by concat
            // (inception-style).
            layer("fork", Split, &["stem_r"], &["fork_a", "fork_b"]),
            layer(
                "b1",
                Convolution {
                    num_output: 16,
                    kernel: 1,
                    stride: 1,
                    pad: 0,
                },
                &["fork_a"],
                &["b1_o"],
            ),
            layer(
                "b2",
                Convolution {
                    num_output: 16,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                },
                &["fork_b"],
                &["b2_o"],
            ),
            layer("join", Concat, &["b1_o", "b2_o"], &["join_o"]),
            layer("join_relu", Relu, &["join_o"], &["join_r"]),
            layer(
                "pool",
                Pooling {
                    method: "max".into(),
                    kernel: 2,
                    stride: 2,
                },
                &["join_r"],
                &["pool_o"],
            ),
            layer(
                "fc",
                InnerProduct { num_output: 10 },
                &["pool_o"],
                &["fc_o"],
            ),
            layer("loss", SoftmaxLoss, &["fc_o", "label"], &["loss_o"]),
        ],
        seed: 99,
    }
}

fn main() {
    let batch = 16;
    let iters = 4;
    let ds = SyntheticDataset::cifar_like(99); // any source with matching HxW crop
    let run = |glp: bool| -> (Vec<f32>, Vec<u64>) {
        let mut ctx = if glp {
            ExecCtx::glp4nn(DeviceProps::titan_xp())
        } else {
            ExecCtx::naive(DeviceProps::titan_xp())
        };
        let net = Net::from_spec(&my_net(batch));
        let mut solver = Solver::new(net, SolverConfig::default());
        let mut losses = Vec::new();
        let mut times = Vec::new();
        for it in 0..iters {
            // Crop the 32x32 synthetic CIFAR images to 24x24.
            let mut full = Blob::nchw(batch, 3, 32, 32);
            let mut labels = Blob::new(&[batch]);
            ds.fill_batch(it * batch, &mut full, &mut labels);
            {
                let data = solver.net.blob_mut("data");
                for n in 0..batch {
                    for c in 0..3 {
                        for y in 0..24 {
                            for x in 0..24 {
                                let v = full.data()[full.offset(n, c, y + 4, x + 4)];
                                let o = data.offset(n, c, y, x);
                                data.data_mut()[o] = v;
                            }
                        }
                    }
                }
            }
            solver
                .net
                .blob_mut("label")
                .data_mut()
                .copy_from_slice(labels.data());
            ctx.take_timings();
            losses.push(solver.step(&mut ctx));
            times.push(ctx.take_timings().iter().map(|t| t.elapsed_ns).sum());
        }
        (losses, times)
    };

    println!("custom network (not in the paper), batch {batch}, simulated Titan XP\n");
    let (nl, nt) = run(false);
    let (gl, gt) = run(true);
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "iter", "loss", "loss(glp)", "naive (ms)", "glp4nn (ms)", "speedup"
    );
    for i in 0..iters {
        println!(
            "{:<6} {:>10.5} {:>10.5} {:>12.3} {:>12.3} {:>8.2}",
            i,
            nl[i],
            gl[i],
            nt[i] as f64 / 1e6,
            gt[i] as f64 / 1e6,
            nt[i] as f64 / gt[i] as f64
        );
    }
    assert!(nl.iter().zip(&gl).all(|(a, b)| a.to_bits() == b.to_bits()));
    println!("\nnetwork-agnostic: the framework never saw this architecture before,");
    println!("yet profiles it, plans stream counts per conv layer, and keeps the math bitwise identical.");
}
