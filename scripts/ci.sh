#!/usr/bin/env bash
# CI gate: formatting, lints, build, full test suite, the serving smoke
# sweep (deterministic; asserts GLP4NN throughput >= naive), the
# schedule-sanitizer smoke matrix (asserts zero diagnostics across
# 4 nets x 3 dispatch modes under full happens-before checking), and the
# plan-replay smoke matrix (asserts replayed ExecPlan timelines are
# identical to imperative dispatch for 4 nets x 3 modes).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
cargo run -p glp4nn-bench --release --bin reproduce -- serving --smoke
cargo run -p glp4nn-bench --release --bin reproduce -- sanitize --smoke
cargo run -p glp4nn-bench --release --bin reproduce -- replay --smoke
cargo run -p glp4nn-bench --release --bin reproduce -- multi-gpu --smoke

echo "ci: all checks passed"
