#!/usr/bin/env bash
# CI gate: formatting, lints, build, full test suite, and the serving
# smoke sweep (deterministic; asserts GLP4NN throughput >= naive).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
cargo run -p glp4nn-bench --release --bin reproduce -- serving --smoke

echo "ci: all checks passed"
