#!/usr/bin/env bash
# CI gate: formatting, lints, build, full test suite, the serving smoke
# sweep (deterministic; asserts GLP4NN throughput >= naive), the
# schedule-sanitizer smoke matrix (asserts zero diagnostics across
# 4 nets x 3 dispatch modes under full happens-before checking), the
# plan-linter smoke matrix (symbolic disjointness certificates plus
# performance lints; asserts zero correctness findings and at least one
# certified capture), the
# plan-replay smoke matrix (asserts replayed ExecPlan timelines are
# identical to imperative dispatch for 4 nets x 3 modes), the fleet
# smoke sweep (sanitized multi-replica serving: asserts JSQ >= RR on SLO
# attainment, zero sanitizer reports, and an up-then-down autoscale run;
# emits a fleet Chrome trace), and the telemetry trace smoke (emits
# Chrome traces for 4 nets x 3 modes plus a multi-GPU overlap run, then
# round-trips every emitted file — fleet trace included — through the
# standalone validate-trace binary).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
cargo run -p glp4nn-bench --release --bin reproduce -- serving --smoke
cargo run -p glp4nn-bench --release --bin reproduce -- sanitize --smoke
cargo run -p glp4nn-bench --release --bin reproduce -- lint --smoke
cargo run -p glp4nn-bench --release --bin reproduce -- replay --smoke
cargo run -p glp4nn-bench --release --bin reproduce -- multi-gpu --smoke
cargo run -p glp4nn-bench --release --bin reproduce -- fleet --smoke
cargo run -p glp4nn-bench --release --bin reproduce -- trace --smoke
cargo run -p telemetry --release --bin validate-trace -- target/telemetry/*.trace.json

echo "ci: all checks passed"
