//! Offline shim for the `bytes` crate.
//!
//! Implements the subset the workspace uses: [`BytesMut`] as an appendable
//! byte builder, [`Bytes`] as an immutable view that doubles as a read
//! cursor, and the [`Buf`]/[`BufMut`] traits with the little-endian
//! accessors cupti-sim's activity-record codec needs.

/// Read cursor over a byte source. `get_*` calls consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Append-only byte sink with little-endian writers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer (the builder half).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Take the full contents, leaving this buffer empty (capacity kept).
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable byte view that is also a read cursor: [`Buf`] reads consume
/// from the front and `len()` tracks the unread remainder, matching how the
/// real crate's `Bytes` behaves under `Buf`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the view is exhausted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unread contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// A new view of `range` within the unread contents.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEADBEEF);
        b.put_u64_le(0x0102030405060708);
        b.put_slice(b"name");
        let mut cur = b.freeze();
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.get_u32_le(), 0xDEADBEEF);
        assert_eq!(cur.get_u64_le(), 0x0102030405060708);
        let mut name = [0u8; 4];
        cur.copy_to_slice(&mut name);
        assert_eq!(&name, b"name");
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn split_takes_contents() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(&[1, 2, 3]);
        let taken = b.split();
        assert_eq!(taken.len(), 3);
        assert_eq!(b.len(), 0);
        assert_eq!(taken.freeze().as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn slice_is_a_subview() {
        let b: Bytes = vec![0, 1, 2, 3, 4, 5].into();
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(b.len(), 6, "slicing does not consume");
    }
}
