//! Offline shim for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its spec types
//! (`NetSpec` et al.) but never drives an actual serializer — there is no
//! data format crate in the dependency tree. The shim therefore provides
//! the two traits as markers plus derive macros that emit the marker
//! impls, which keeps the derive annotations meaningful (a type must still
//! be nameable and well-formed) without a serialization engine.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized (shim: no methods).
pub trait Serialize {}

/// Marker for types that can be deserialized (shim: no methods).
pub trait Deserialize<'de> {}
