//! Case generation and the test loop.

use crate::strategy::Strategy;

/// Runner configuration (shim: only the case count is honored).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is discarded.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Deterministic RNG driving generation (xoshiro256++, fixed seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG seeded from `seed` via SplitMix64 expansion.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            *word = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Drive `test` over `cfg.cases` generated inputs, panicking on the first
/// failing case (inputs are not shrunk).
pub fn run<S, F>(cfg: ProptestConfig, strategy: S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed(0xA02B_DBF7_BB3C_0A75);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    while passed < cfg.cases {
        match test(strategy.generate(&mut rng)) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < cfg.cases as u64 * 20 + 1000,
                    "too many prop_assume! rejections ({rejected}) for {} cases",
                    cfg.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed after {passed} passing cases: {msg}")
            }
        }
    }
}
