//! Offline shim for the `proptest` crate.
//!
//! Implements the API surface the workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/vec strategies, `prop_map` /
//! `prop_flat_map`, `prop::collection::vec`, `prop::sample::select`,
//! `prop::bool::ANY`, `any::<T>()`, and the `prop_assert*` / `prop_assume`
//! macros. Cases are generated from a fixed-seed xoshiro256++ stream, so
//! runs are deterministic. Failing cases are reported with their assertion
//! message but are **not shrunk** — this shim trades minimal counterexamples
//! for zero dependencies.

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies sampling from explicit value sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Choose one of `items` uniformly.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniform over `{false, true}`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `prop::*` namespace mirroring the real crate's module layout.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)` (left: `{:?}`, right: `{:?}`)",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Discard the current case (does not count toward the case target).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define `#[test]` functions over generated inputs.
///
/// Supports the same shape the real crate does for the workspace's tests:
/// an optional `#![proptest_config(...)]` header followed by test functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                let strat = ($($strat,)+);
                $crate::test_runner::run(cfg, strat, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
