//! The [`Strategy`] trait and its combinators: ranges, tuples, `Vec`s of
//! strategies, `prop_map`, and `prop_flat_map`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A `Vec` of strategies generates element-wise (used by tests that build
/// heterogeneously-parameterized strategies with `prop_flat_map`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
