//! Offline shim for the `criterion` crate.
//!
//! Keeps the workspace's `benches/` compiling and runnable offline. Each
//! `Bencher::iter` body is executed a small fixed number of times and the
//! mean wall-clock time is printed — enough to spot order-of-magnitude
//! regressions and to keep `cargo test`/`cargo bench` green, without
//! criterion's statistical machinery.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark (shim: fixed, no warm-up analysis).
const RUNS: u32 = 3;

/// Re-export of the standard black box, which real criterion also provides.
pub use std::hint::black_box;

/// Work-unit annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..RUNS {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed_ns += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

fn run_one(group: Option<&str>, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.elapsed_ns / b.iters as u128
    } else {
        0
    };
    match group {
        Some(g) => println!("bench {g}/{id}: {mean} ns/iter ({} iters)", b.iters),
        None => println!("bench {id}: {mean} ns/iter ({} iters)", b.iters),
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the target sample count (shim: accepted and ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the throughput annotation (shim: accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into().id, &mut f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(None, id, &mut f);
        self
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
