//! Offline shim for the `parking_lot` crate.
//!
//! Provides the subset the workspace uses: a [`Mutex`] whose `lock()`
//! returns the guard directly (no poisoning), backed by `std::sync::Mutex`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with a non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, a panic in
    /// a previous critical section does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
