//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Provides `rngs::StdRng` (xoshiro256++ seeded through SplitMix64),
//! `SeedableRng::seed_from_u64`, `Rng::gen`, and
//! `distributions::{Distribution, Uniform}` — exactly the surface the
//! tensor fillers and the dropout layer use. Streams are deterministic per
//! seed (which the workspace's tests rely on) but do NOT match upstream
//! rand's `StdRng` byte-for-byte.

pub mod rngs;

pub mod distributions {
    use crate::RngCore;

    /// Types that can produce values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Types samplable by [`Uniform`]. The single generic constructor (as
    /// in real rand) lets call sites rely on inference to pick the type.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Map 64 random bits onto `[lo, hi)` (or `[lo, hi]` if inclusive).
        fn uniform_from_bits(lo: Self, hi: Self, inclusive: bool, bits: u64) -> Self;
    }

    macro_rules! sample_uniform_float {
        ($t:ty, $bits:expr) => {
            impl SampleUniform for $t {
                fn uniform_from_bits(lo: Self, hi: Self, inclusive: bool, bits: u64) -> Self {
                    let denom = if inclusive {
                        ((1u64 << $bits) - 1) as $t
                    } else {
                        (1u64 << $bits) as $t
                    };
                    let u = (bits >> (64 - $bits)) as $t / denom;
                    lo + u * (hi - lo)
                }
            }
        };
    }
    sample_uniform_float!(f32, 24);
    sample_uniform_float!(f64, 53);

    /// Uniform distribution over an interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform on the half-open interval `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform on the closed interval `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::uniform_from_bits(self.lo, self.hi, self.inclusive, rng.next_u64())
        }
    }
}

/// Low-level RNG interface: a source of 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling of a type's "standard" distribution (uniform over the domain
/// for integers and bools, `[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform integer in `[0, bound)`.
    fn gen_range_usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Uniform::new_inclusive(-1.0f32, 1.0f32);
        let n = 20_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&v));
            sum += v as f64;
        }
        let mean = sum / n as f64;
        assert!(mean.abs() < 0.02, "uniform mean drifted: {mean}");
    }
}
