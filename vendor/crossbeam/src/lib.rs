//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` / `crossbeam::thread::Scope::spawn` — the
//! only surface the workspace uses — implemented on `std::thread::scope`.
//! Spawn requests are collected while the caller's closure runs, then
//! executed on real scoped threads; a panicking worker surfaces as `Err`
//! from [`scope`], matching crossbeam's contract.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    /// Result type of [`scope`](super::scope): `Err` carries a worker panic
    /// payload.
    pub type Result<T> = std::thread::Result<T>;

    type Task<'env> = Box<dyn for<'a> FnOnce(&'a Scope<'env>) + Send + 'env>;

    /// A scope handle: `spawn` registers closures that run on worker
    /// threads before [`scope`](super::scope) returns.
    pub struct Scope<'env> {
        tasks: Mutex<Vec<Task<'env>>>,
    }

    impl<'env> Scope<'env> {
        /// Spawn a worker. The closure receives the scope handle (so it may
        /// spawn further work) and is guaranteed to finish before `scope`
        /// returns. The return value is discarded, as crossbeam callers in
        /// this workspace never join handles explicitly.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'env>) -> T + Send + 'env,
            T: Send + 'env,
        {
            self.tasks.lock().unwrap().push(Box::new(move |s| {
                f(s);
            }));
        }
    }

    pub(crate) fn run_scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let s = Scope {
            tasks: Mutex::new(Vec::new()),
        };
        catch_unwind(AssertUnwindSafe(|| {
            let r = f(&s);
            // Run collected tasks; tasks may spawn more, so drain in waves.
            loop {
                let batch: Vec<Task<'env>> = std::mem::take(&mut *s.tasks.lock().unwrap());
                if batch.is_empty() {
                    break;
                }
                let sref = &s;
                std::thread::scope(|ts| {
                    for task in batch {
                        ts.spawn(move || task(sref));
                    }
                });
            }
            r
        }))
    }
}

/// Create a scope for spawning borrowed-data threads. All spawned workers
/// complete before this returns; a worker panic is reported as `Err`.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: FnOnce(&thread::Scope<'env>) -> R,
{
    thread::run_scope(f)
}

#[cfg(test)]
mod tests {
    #[test]
    fn workers_finish_before_scope_returns() {
        let mut data = vec![0u64; 64];
        let mid = data.len() / 2;
        let (a, b) = data.split_at_mut(mid);
        super::scope(|s| {
            s.spawn(move |_| a.iter_mut().for_each(|x| *x += 1));
            s.spawn(move |_| b.iter_mut().for_each(|x| *x += 2));
        })
        .unwrap();
        assert!(data[..mid].iter().all(|&x| x == 1));
        assert!(data[mid..].iter().all(|&x| x == 2));
    }

    #[test]
    fn worker_panic_is_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_runs() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        let fref = &flag;
        super::scope(|s| {
            s.spawn(move |inner| {
                inner.spawn(move |_| fref.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
