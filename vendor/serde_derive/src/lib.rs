//! Offline shim for `serde_derive`.
//!
//! Emits marker-trait impls for the shim `serde` crate. No `syn`/`quote`:
//! the item's name is recovered with a tiny hand-rolled scan over the token
//! stream (skip attributes and visibility, take the identifier after
//! `struct`/`enum`). Generic spec types would need real parsing, but the
//! workspace only derives on plain named types.

use proc_macro::{TokenStream, TokenTree};

/// Find the type name following the `struct` or `enum` keyword.
fn item_name(item: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    // Non-ident trees (attribute/visibility groups, punctuation) are skipped.
    for tree in item {
        if let TokenTree::Ident(id) = tree {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    match item_name(item) {
        Some(name) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    match item_name(item) {
        Some(name) => format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}
